//! Classical reversible gates, generic over the qubit naming scheme.
//!
//! The same [`Gate`] type is used at three abstraction levels:
//! `Gate<Operand>` inside module bodies (qubits named relative to the
//! module frame), `Gate<VirtId>` in executed traces (program-wide
//! virtual qubits), and `Gate<PhysId>`-like instantiations after
//! placement. All gates here are their own inverse, which makes
//! uncomputation a purely mechanical transformation.

use std::fmt;

/// A classical reversible logic gate over qubits named by `Q`.
///
/// The gate set is the reversible-arithmetic subset the SQUARE paper
/// operates on: NOT, CNOT, Toffoli, SWAP and the generalized
/// multi-controlled NOT. Every variant is self-inverse.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate<Q> {
    /// NOT: flips `target`.
    X {
        /// Qubit to flip.
        target: Q,
    },
    /// Controlled-NOT: flips `target` iff `control` is 1.
    Cx {
        /// Control qubit (read-only).
        control: Q,
        /// Target qubit (written).
        target: Q,
    },
    /// Toffoli: flips `target` iff both controls are 1.
    Ccx {
        /// First control qubit.
        c0: Q,
        /// Second control qubit.
        c1: Q,
        /// Target qubit (written).
        target: Q,
    },
    /// Exchanges the states of the two qubits.
    Swap {
        /// First qubit.
        a: Q,
        /// Second qubit.
        b: Q,
    },
    /// Multi-controlled NOT: flips `target` iff every control is 1.
    ///
    /// `Mcx` with zero controls is `X`; with one, `Cx`; with two, `Ccx`.
    /// Higher control counts are used by logic-synthesis workloads and
    /// are decomposed into Toffolis (with ancilla) before costing, see
    /// `square-workloads`.
    Mcx {
        /// Control qubits (read-only).
        controls: Vec<Q>,
        /// Target qubit (written).
        target: Q,
    },
}

impl<Q> Gate<Q> {
    /// Number of qubits the gate touches.
    pub fn arity(&self) -> usize {
        match self {
            Gate::X { .. } => 1,
            Gate::Cx { .. } | Gate::Swap { .. } => 2,
            Gate::Ccx { .. } => 3,
            Gate::Mcx { controls, .. } => controls.len() + 1,
        }
    }

    /// Visits every qubit the gate touches, controls first.
    pub fn for_each_qubit(&self, mut f: impl FnMut(&Q)) {
        match self {
            Gate::X { target } => f(target),
            Gate::Cx { control, target } => {
                f(control);
                f(target);
            }
            Gate::Ccx { c0, c1, target } => {
                f(c0);
                f(c1);
                f(target);
            }
            Gate::Swap { a, b } => {
                f(a);
                f(b);
            }
            Gate::Mcx { controls, target } => {
                for c in controls {
                    f(c);
                }
                f(target);
            }
        }
    }

    /// All qubits the gate touches, collected in control-then-target order.
    pub fn qubits(&self) -> Vec<Q>
    where
        Q: Clone,
    {
        let mut v = Vec::with_capacity(self.arity());
        self.for_each_qubit(|q| v.push(q.clone()));
        v
    }

    /// Qubits the gate *writes* (may change state). Controls are excluded.
    pub fn written_qubits(&self) -> Vec<Q>
    where
        Q: Clone,
    {
        match self {
            Gate::X { target }
            | Gate::Cx { target, .. }
            | Gate::Ccx { target, .. }
            | Gate::Mcx { target, .. } => vec![target.clone()],
            Gate::Swap { a, b } => vec![a.clone(), b.clone()],
        }
    }

    /// Maps the qubit names through `f`, preserving the gate kind.
    pub fn map<R>(&self, mut f: impl FnMut(&Q) -> R) -> Gate<R> {
        match self {
            Gate::X { target } => Gate::X { target: f(target) },
            Gate::Cx { control, target } => Gate::Cx {
                control: f(control),
                target: f(target),
            },
            Gate::Ccx { c0, c1, target } => Gate::Ccx {
                c0: f(c0),
                c1: f(c1),
                target: f(target),
            },
            Gate::Swap { a, b } => Gate::Swap { a: f(a), b: f(b) },
            Gate::Mcx { controls, target } => Gate::Mcx {
                controls: controls.iter().map(&mut f).collect(),
                target: f(target),
            },
        }
    }

    /// Returns the inverse gate. Every gate in this set is self-inverse,
    /// so this is a clone; it exists to make inversion sites explicit.
    pub fn inverse(&self) -> Gate<Q>
    where
        Q: Clone,
    {
        self.clone()
    }

    /// True if the gate acts on two or more qubits (and therefore needs
    /// the operands to be adjacent / connected on hardware).
    pub fn is_multi_qubit(&self) -> bool {
        self.arity() >= 2
    }

    /// Number of native two-qubit interactions this gate costs after
    /// decomposition to Clifford+T: CNOT and SWAP count as written
    /// (SWAP = 3 CNOTs), a Toffoli costs 6 CNOTs in the standard
    /// Clifford+T decomposition, and an `Mcx` with `k ≥ 3` controls
    /// costs `(2k - 3)` Toffolis worth when a clean-ancilla V-chain is
    /// used. Used only for *costing*; scheduling works on whole gates.
    pub fn two_qubit_cost(&self) -> u64 {
        match self {
            Gate::X { .. } => 0,
            Gate::Cx { .. } => 1,
            Gate::Swap { .. } => 3,
            Gate::Ccx { .. } => 6,
            Gate::Mcx { controls, .. } => match controls.len() {
                0 => 0,
                1 => 1,
                n => 6 * (2 * n as u64 - 3),
            },
        }
    }
}

impl<Q: Eq> Gate<Q> {
    /// True if any qubit appears more than once in the operand list.
    pub fn has_duplicate_operand(&self) -> bool
    where
        Q: Clone,
    {
        let qs = self.qubits();
        for (i, a) in qs.iter().enumerate() {
            for b in &qs[i + 1..] {
                if a == b {
                    return true;
                }
            }
        }
        false
    }
}

impl<Q: fmt::Display> fmt::Display for Gate<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::X { target } => write!(f, "X {target}"),
            Gate::Cx { control, target } => write!(f, "CNOT {control} {target}"),
            Gate::Ccx { c0, c1, target } => write!(f, "Toffoli {c0} {c1} {target}"),
            Gate::Swap { a, b } => write!(f, "SWAP {a} {b}"),
            Gate::Mcx { controls, target } => {
                write!(f, "MCX")?;
                for c in controls {
                    write!(f, " {c}")?;
                }
                write!(f, " {target}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_qubits_len() {
        let g: Gate<u32> = Gate::Ccx {
            c0: 0,
            c1: 1,
            target: 2,
        };
        assert_eq!(g.arity(), 3);
        assert_eq!(g.qubits(), vec![0, 1, 2]);
    }

    #[test]
    fn written_qubits_excludes_controls() {
        let g: Gate<u32> = Gate::Cx {
            control: 4,
            target: 7,
        };
        assert_eq!(g.written_qubits(), vec![7]);
        let s: Gate<u32> = Gate::Swap { a: 1, b: 2 };
        assert_eq!(s.written_qubits(), vec![1, 2]);
    }

    #[test]
    fn map_renames_all_operands() {
        let g: Gate<u32> = Gate::Mcx {
            controls: vec![0, 1, 2],
            target: 3,
        };
        let h = g.map(|q| q * 10);
        assert_eq!(
            h,
            Gate::Mcx {
                controls: vec![0, 10, 20],
                target: 30
            }
        );
    }

    #[test]
    fn self_inverse() {
        let g: Gate<u32> = Gate::Swap { a: 5, b: 6 };
        assert_eq!(g.inverse(), g);
    }

    #[test]
    fn duplicate_detection() {
        let bad: Gate<u32> = Gate::Cx {
            control: 3,
            target: 3,
        };
        assert!(bad.has_duplicate_operand());
        let ok: Gate<u32> = Gate::Cx {
            control: 3,
            target: 4,
        };
        assert!(!ok.has_duplicate_operand());
    }

    #[test]
    fn two_qubit_costs() {
        assert_eq!(Gate::X { target: 0u32 }.two_qubit_cost(), 0);
        assert_eq!(
            Gate::Mcx {
                controls: vec![0u32, 1, 2, 3],
                target: 4
            }
            .two_qubit_cost(),
            6 * 5
        );
    }

    #[test]
    fn display_formats() {
        let g: Gate<u32> = Gate::Ccx {
            c0: 1,
            c1: 2,
            target: 3,
        };
        assert_eq!(g.to_string(), "Toffoli 1 2 3");
    }
}

//! Static program analysis: flattened gate counts, ancilla footprints,
//! and call-graph shape.
//!
//! The CER heuristic (Eq. 2 of the paper) needs `G_p`, an estimate of
//! the gates remaining between a reclamation point and the parent's
//! uncompute block. These per-module *forward* costs (compute + store,
//! calls fully expanded, no uncomputation) provide that estimate; the
//! paper computes the same quantity from its instrumented LLVM IR.

use std::collections::HashMap;

use crate::gate::Gate;
use crate::module::{ModuleId, Operand, Program, Stmt};

/// Flattened static costs of one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Primitive gates in the compute block, calls fully expanded
    /// (forward execution only — no uncompute blocks).
    pub gates_compute: u64,
    /// Primitive gates in the store block, calls fully expanded.
    pub gates_store: u64,
    /// Two-qubit interaction cost (Clifford+T decomposition) of the
    /// forward execution, for noise-oriented costing.
    pub two_qubit_cost: u64,
    /// Ancilla the module allocates itself.
    pub ancilla_own: usize,
    /// Total ancilla allocations across a full forward execution
    /// (own + every callee's, counted per call site).
    pub ancilla_transitive: u64,
    /// Maximum call-nesting depth below this module (leaf = 0).
    pub height: usize,
    /// Number of call sites in the module body.
    pub call_sites: usize,
}

impl ModuleStats {
    /// Forward gate cost of one full execution of the module.
    pub fn gates_forward(&self) -> u64 {
        self.gates_compute + self.gates_store
    }
}

/// Per-program analysis results, indexed by [`ModuleId`].
#[derive(Debug, Clone)]
pub struct ProgramStats {
    modules: Vec<ModuleStats>,
}

impl ProgramStats {
    /// Analyzes `program` (linear in program size thanks to
    /// memoization over the call DAG).
    pub fn analyze(program: &Program) -> Self {
        let n = program.modules().len();
        let mut memo: Vec<Option<ModuleStats>> = vec![None; n];
        for i in 0..n {
            analyze_module(program, i, &mut memo);
        }
        ProgramStats {
            modules: memo.into_iter().map(|m| m.unwrap_or_default()).collect(),
        }
    }

    /// Stats for one module.
    pub fn module(&self, id: ModuleId) -> &ModuleStats {
        &self.modules[id.index()]
    }

    /// Forward gate cost of a single statement (1 per primitive gate;
    /// multi-controlled gates and calls expand).
    pub fn stmt_forward_gates(&self, stmt: &Stmt) -> u64 {
        match stmt {
            Stmt::Gate(g) => primitive_count(g),
            Stmt::Call { callee, .. } => self.modules[callee.index()].gates_forward(),
        }
    }

    /// Total forward gate cost of the whole program (one execution of
    /// the entry module).
    pub fn entry_forward_gates(&self, program: &Program) -> u64 {
        self.module(program.entry()).gates_forward()
    }

    /// Histogram of module heights, useful for characterizing synthetic
    /// benchmarks (the paper parameterizes them by nesting depth).
    pub fn height_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for m in &self.modules {
            *h.entry(m.height).or_insert(0) += 1;
        }
        h
    }
}

/// Primitive gate count of a single IR gate: standard gates count 1;
/// a k-control MCX (k ≥ 3) expands to `2k − 3` Toffolis.
pub fn primitive_count(gate: &Gate<Operand>) -> u64 {
    match gate {
        Gate::Mcx { controls, .. } if controls.len() >= 3 => 2 * controls.len() as u64 - 3,
        _ => 1,
    }
}

fn analyze_module(
    program: &Program,
    idx: usize,
    memo: &mut Vec<Option<ModuleStats>>,
) -> ModuleStats {
    if let Some(s) = memo[idx] {
        return s;
    }
    // Guard against (invalid) cyclic programs: report zero rather than
    // recursing forever; `validate_program` rejects cycles separately.
    memo[idx] = Some(ModuleStats::default());
    let module = &program.modules()[idx];
    let mut stats = ModuleStats {
        ancilla_own: module.ancillas(),
        ancilla_transitive: module.ancillas() as u64,
        ..ModuleStats::default()
    };
    let block_cost =
        |stmts: &[Stmt], memo: &mut Vec<Option<ModuleStats>>, stats: &mut ModuleStats| -> u64 {
            let mut gates = 0u64;
            for stmt in stmts {
                match stmt {
                    Stmt::Gate(g) => {
                        gates += primitive_count(g);
                        stats.two_qubit_cost += g.two_qubit_cost();
                    }
                    Stmt::Call { callee, .. } => {
                        let sub = analyze_module(program, callee.index(), memo);
                        gates += sub.gates_forward();
                        stats.two_qubit_cost += sub.two_qubit_cost;
                        stats.ancilla_transitive += sub.ancilla_transitive;
                        stats.height = stats.height.max(sub.height + 1);
                        stats.call_sites += 1;
                    }
                }
            }
            gates
        };
    stats.gates_compute = block_cost(module.compute(), memo, &mut stats);
    stats.gates_store = block_cost(module.store(), memo, &mut stats);
    memo[idx] = Some(stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn two_level_program() -> (Program, ModuleId, ModuleId) {
        let mut b = ProgramBuilder::new();
        let leaf = b
            .module("leaf", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.ccx(x, a, out); // compute touches out? it's fine: store empty
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.call(leaf, &[x, out]);
                m.call(leaf, &[x, out]);
            })
            .unwrap();
        (b.finish(main).unwrap(), leaf, main)
    }

    #[test]
    fn counts_flatten_calls() {
        let (p, leaf, main) = two_level_program();
        let stats = ProgramStats::analyze(&p);
        assert_eq!(stats.module(leaf).gates_forward(), 2);
        // main: 1 X + 2 calls × 2 gates
        assert_eq!(stats.module(main).gates_forward(), 5);
        assert_eq!(stats.module(main).ancilla_transitive, 2 + 2);
        assert_eq!(stats.module(main).height, 1);
        assert_eq!(stats.module(main).call_sites, 2);
        assert_eq!(stats.module(leaf).height, 0);
    }

    #[test]
    fn stmt_cost_of_call_is_callee_forward() {
        let (p, leaf, main) = two_level_program();
        let stats = ProgramStats::analyze(&p);
        let call = p.module(main).compute().get(1).unwrap();
        assert_eq!(stats.stmt_forward_gates(call), 2);
        let _ = leaf;
    }

    #[test]
    fn mcx_counts_as_vchain() {
        use crate::gate::Gate;
        use crate::module::Operand;
        let g = Gate::Mcx {
            controls: vec![
                Operand::Param(0),
                Operand::Param(1),
                Operand::Param(2),
                Operand::Param(3),
                Operand::Param(4),
            ],
            target: Operand::Param(5),
        };
        assert_eq!(primitive_count(&g), 7);
    }
}

//! Static program analysis: flattened gate counts, ancilla footprints,
//! and call-graph shape.
//!
//! The CER heuristic (Eq. 2 of the paper) needs `G_p`, an estimate of
//! the gates remaining between a reclamation point and the parent's
//! uncompute block. These per-module *forward* costs (compute + store,
//! calls fully expanded, no uncomputation) provide that estimate; the
//! paper computes the same quantity from its instrumented LLVM IR.

use std::collections::{HashMap, HashSet};

use crate::gate::Gate;
use crate::module::{ModuleId, Operand, Program, Stmt};
use crate::trace::{TraceOp, VirtId};

/// Flattened static costs of one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Primitive gates in the compute block, calls fully expanded
    /// (forward execution only — no uncompute blocks).
    pub gates_compute: u64,
    /// Primitive gates in the store block, calls fully expanded.
    pub gates_store: u64,
    /// Two-qubit interaction cost (Clifford+T decomposition) of the
    /// forward execution, for noise-oriented costing.
    pub two_qubit_cost: u64,
    /// Ancilla the module allocates itself.
    pub ancilla_own: usize,
    /// Total ancilla allocations across a full forward execution
    /// (own + every callee's, counted per call site).
    pub ancilla_transitive: u64,
    /// Maximum call-nesting depth below this module (leaf = 0).
    pub height: usize,
    /// Number of call sites in the module body.
    pub call_sites: usize,
}

impl ModuleStats {
    /// Forward gate cost of one full execution of the module.
    pub fn gates_forward(&self) -> u64 {
        self.gates_compute + self.gates_store
    }
}

/// Per-program analysis results, indexed by [`ModuleId`].
#[derive(Debug, Clone)]
pub struct ProgramStats {
    modules: Vec<ModuleStats>,
}

impl ProgramStats {
    /// Analyzes `program` (linear in program size thanks to
    /// memoization over the call DAG).
    pub fn analyze(program: &Program) -> Self {
        let n = program.modules().len();
        let mut memo: Vec<Option<ModuleStats>> = vec![None; n];
        for i in 0..n {
            analyze_module(program, i, &mut memo);
        }
        ProgramStats {
            modules: memo.into_iter().map(|m| m.unwrap_or_default()).collect(),
        }
    }

    /// Stats for one module.
    pub fn module(&self, id: ModuleId) -> &ModuleStats {
        &self.modules[id.index()]
    }

    /// Forward gate cost of a single statement (1 per primitive gate;
    /// multi-controlled gates and calls expand).
    pub fn stmt_forward_gates(&self, stmt: &Stmt) -> u64 {
        match stmt {
            Stmt::Gate(g) => primitive_count(g),
            Stmt::Call { callee, .. } => self.modules[callee.index()].gates_forward(),
            Stmt::Measure { .. } => 1,
            Stmt::CondGate { gate, .. } => primitive_count(gate),
        }
    }

    /// Total forward gate cost of the whole program (one execution of
    /// the entry module).
    pub fn entry_forward_gates(&self, program: &Program) -> u64 {
        self.module(program.entry()).gates_forward()
    }

    /// Histogram of module heights, useful for characterizing synthetic
    /// benchmarks (the paper parameterizes them by nesting depth).
    pub fn height_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for m in &self.modules {
            *h.entry(m.height).or_insert(0) += 1;
        }
        h
    }
}

/// Primitive gate count of a single IR gate: standard gates count 1;
/// a k-control MCX (k ≥ 3) expands to `2k − 3` Toffolis.
pub fn primitive_count(gate: &Gate<Operand>) -> u64 {
    match gate {
        Gate::Mcx { controls, .. } if controls.len() >= 3 => 2 * controls.len() as u64 - 3,
        _ => 1,
    }
}

/// Gate events of a recorded compute slice, bucketed by the gate
/// classes the measurement-based-uncompute cost model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SliceClassCounts {
    /// NOT gates (including zero-control MCX).
    pub x: u64,
    /// CNOT gates (including one-control MCX).
    pub cx: u64,
    /// Toffoli gates (two-control MCX counts here; a k ≥ 3 MCX counts
    /// as its `2k − 3` Toffoli V-chain).
    pub ccx: u64,
    /// SWAP gates.
    pub swap: u64,
    /// Mid-circuit measurements (from already-lowered child frames).
    pub measure: u64,
    /// Classically controlled gates (likewise).
    pub cond: u64,
}

/// Measurement-based-uncompute eligibility report for one frame's
/// compute slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbuPlan {
    /// Frame ancillas the slice actually writes, in first-write order.
    /// Each needs one measurement plus one conditional correction; any
    /// remaining frame ancillas are still |0⟩ and are simply freed.
    pub written: Vec<VirtId>,
    /// Class histogram of every gate event in the slice — the raw
    /// input to the per-gate-class cost comparison against unitary
    /// inversion.
    pub counts: SliceClassCounts,
}

/// Scans a frame's recorded compute slice for measurement-based
/// uncomputation (MBU) eligibility.
///
/// MBU replaces the mechanical inverse of the compute block with one
/// measurement and one classically controlled NOT per written ancilla.
/// That is only sound (the physical analog: the X-basis measurement's
/// phase fix-up is classically computable) when the ancillas were
/// built by classical-logic gates, so the scan demands:
///
/// - every gate *write* in the slice targets a frame ancilla or an
///   interior allocation — never a parameter or other external qubit;
/// - writes to frame ancillas use the Toffoli class only (X / CNOT /
///   Toffoli; SWAP and un-lowered k ≥ 3 MCX disqualify);
/// - every interior allocation is freed within the slice (a child that
///   left garbage needs the unitary sweep — MBU cannot reset qubits it
///   would strand live).
///
/// Measurements read only; classically controlled gates are classified
/// by their inner gate — so a child frame that itself reclaimed via
/// MBU leaves a slice that stays eligible (MBU composes up the call
/// tree).
///
/// Returns `None` when ineligible. The caller decides *whether* to use
/// the plan by costing `counts` against `written` with its gate-class
/// cost table; this scan only answers whether MBU would be correct.
pub fn scan_mbu_slice(
    slice: &[TraceOp],
    mut is_frame_ancilla: impl FnMut(VirtId) -> bool,
) -> Option<MbuPlan> {
    let mut interior: HashSet<VirtId> = HashSet::new();
    let mut open: HashSet<VirtId> = HashSet::new();
    let mut written: Vec<VirtId> = Vec::new();
    let mut counts = SliceClassCounts::default();
    let mut note_writes =
        |gate: &Gate<VirtId>, interior: &HashSet<VirtId>, written: &mut Vec<VirtId>| -> bool {
            for w in gate.written_qubits() {
                if interior.contains(&w) {
                    continue;
                }
                if !is_frame_ancilla(w) || !toffoli_class(gate) {
                    return false;
                }
                if !written.contains(&w) {
                    written.push(w);
                }
            }
            true
        };
    for op in slice {
        match op {
            TraceOp::Alloc(q) => {
                interior.insert(*q);
                open.insert(*q);
            }
            TraceOp::Free(q) => {
                if !open.remove(q) {
                    // Frees a qubit the slice did not allocate: the
                    // slice is not a self-contained compute block.
                    return None;
                }
            }
            TraceOp::Gate(g) => {
                count_gate_class(g, &mut counts);
                if !note_writes(g, &interior, &mut written) {
                    return None;
                }
            }
            TraceOp::Measure { .. } => counts.measure += 1,
            TraceOp::CondGate { gate, .. } => {
                counts.cond += 1;
                if !note_writes(gate, &interior, &mut written) {
                    return None;
                }
            }
        }
    }
    if !open.is_empty() {
        // A child frame left garbage alive: only unitary inversion can
        // sweep it.
        return None;
    }
    Some(MbuPlan { written, counts })
}

/// True for gates whose action is classical logic with a classically
/// computable measurement fix-up: X, CNOT, Toffoli (and MCX up to two
/// controls, which is the same set).
fn toffoli_class(gate: &Gate<VirtId>) -> bool {
    match gate {
        Gate::X { .. } | Gate::Cx { .. } | Gate::Ccx { .. } => true,
        Gate::Swap { .. } => false,
        Gate::Mcx { controls, .. } => controls.len() <= 2,
    }
}

fn count_gate_class(gate: &Gate<VirtId>, counts: &mut SliceClassCounts) {
    match gate {
        Gate::X { .. } => counts.x += 1,
        Gate::Cx { .. } => counts.cx += 1,
        Gate::Ccx { .. } => counts.ccx += 1,
        Gate::Swap { .. } => counts.swap += 1,
        Gate::Mcx { controls, .. } => match controls.len() {
            0 => counts.x += 1,
            1 => counts.cx += 1,
            2 => counts.ccx += 1,
            k => counts.ccx += 2 * k as u64 - 3,
        },
    }
}

fn analyze_module(
    program: &Program,
    idx: usize,
    memo: &mut Vec<Option<ModuleStats>>,
) -> ModuleStats {
    if let Some(s) = memo[idx] {
        return s;
    }
    // Guard against (invalid) cyclic programs: report zero rather than
    // recursing forever; `validate_program` rejects cycles separately.
    memo[idx] = Some(ModuleStats::default());
    let module = &program.modules()[idx];
    let mut stats = ModuleStats {
        ancilla_own: module.ancillas(),
        ancilla_transitive: module.ancillas() as u64,
        ..ModuleStats::default()
    };
    let block_cost =
        |stmts: &[Stmt], memo: &mut Vec<Option<ModuleStats>>, stats: &mut ModuleStats| -> u64 {
            let mut gates = 0u64;
            for stmt in stmts {
                match stmt {
                    Stmt::Gate(g) => {
                        gates += primitive_count(g);
                        stats.two_qubit_cost += g.two_qubit_cost();
                    }
                    Stmt::Call { callee, .. } => {
                        let sub = analyze_module(program, callee.index(), memo);
                        gates += sub.gates_forward();
                        stats.two_qubit_cost += sub.two_qubit_cost;
                        stats.ancilla_transitive += sub.ancilla_transitive;
                        stats.height = stats.height.max(sub.height + 1);
                        stats.call_sites += 1;
                    }
                    Stmt::Measure { .. } => gates += 1,
                    Stmt::CondGate { gate, .. } => {
                        gates += primitive_count(gate);
                        stats.two_qubit_cost += gate.two_qubit_cost();
                    }
                }
            }
            gates
        };
    stats.gates_compute = block_cost(module.compute(), memo, &mut stats);
    stats.gates_store = block_cost(module.store(), memo, &mut stats);
    memo[idx] = Some(stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn two_level_program() -> (Program, ModuleId, ModuleId) {
        let mut b = ProgramBuilder::new();
        let leaf = b
            .module("leaf", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.ccx(x, a, out); // compute touches out? it's fine: store empty
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.call(leaf, &[x, out]);
                m.call(leaf, &[x, out]);
            })
            .unwrap();
        (b.finish(main).unwrap(), leaf, main)
    }

    #[test]
    fn counts_flatten_calls() {
        let (p, leaf, main) = two_level_program();
        let stats = ProgramStats::analyze(&p);
        assert_eq!(stats.module(leaf).gates_forward(), 2);
        // main: 1 X + 2 calls × 2 gates
        assert_eq!(stats.module(main).gates_forward(), 5);
        assert_eq!(stats.module(main).ancilla_transitive, 2 + 2);
        assert_eq!(stats.module(main).height, 1);
        assert_eq!(stats.module(main).call_sites, 2);
        assert_eq!(stats.module(leaf).height, 0);
    }

    #[test]
    fn stmt_cost_of_call_is_callee_forward() {
        let (p, leaf, main) = two_level_program();
        let stats = ProgramStats::analyze(&p);
        let call = p.module(main).compute().get(1).unwrap();
        assert_eq!(stats.stmt_forward_gates(call), 2);
        let _ = leaf;
    }

    #[test]
    fn mbu_scan_accepts_toffoli_built_slice() {
        use crate::trace::{ClbitId, TraceOp, VirtId};
        // Frame ancillas a4, a5; param p0 read-only; interior i9
        // allocated and freed inside the slice.
        let anc = |q: VirtId| q == VirtId(4) || q == VirtId(5);
        let slice = vec![
            TraceOp::Gate(Gate::Cx {
                control: VirtId(0),
                target: VirtId(4),
            }),
            TraceOp::Alloc(VirtId(9)),
            TraceOp::Gate(Gate::Ccx {
                c0: VirtId(0),
                c1: VirtId(4),
                target: VirtId(9),
            }),
            // Interior qubits may be written by any class (here SWAP)
            // and carry child MBU events without disqualifying.
            TraceOp::Measure {
                qubit: VirtId(9),
                clbit: ClbitId(0),
            },
            TraceOp::CondGate {
                clbit: ClbitId(0),
                gate: Gate::X { target: VirtId(9) },
            },
            TraceOp::Free(VirtId(9)),
            TraceOp::Gate(Gate::Ccx {
                c0: VirtId(0),
                c1: VirtId(4),
                target: VirtId(5),
            }),
        ];
        let plan = scan_mbu_slice(&slice, anc).expect("eligible");
        assert_eq!(plan.written, vec![VirtId(4), VirtId(5)]);
        assert_eq!(plan.counts.cx, 1);
        assert_eq!(plan.counts.ccx, 2);
        assert_eq!(plan.counts.measure, 1);
        assert_eq!(plan.counts.cond, 1);
    }

    #[test]
    fn mbu_scan_rejects_swaps_external_writes_and_garbage() {
        use crate::trace::{TraceOp, VirtId};
        let anc = |q: VirtId| q == VirtId(4);
        // SWAP writes a frame ancilla: wrong gate class.
        let swapped = vec![TraceOp::Gate(Gate::Swap {
            a: VirtId(4),
            b: VirtId(0),
        })];
        assert_eq!(scan_mbu_slice(&swapped, anc), None);
        // Write to a parameter (not ancilla, not interior).
        let external = vec![TraceOp::Gate(Gate::Cx {
            control: VirtId(4),
            target: VirtId(0),
        })];
        assert_eq!(scan_mbu_slice(&external, anc), None);
        // Interior allocation never freed: a garbage child frame.
        let garbage = vec![
            TraceOp::Alloc(VirtId(9)),
            TraceOp::Gate(Gate::Cx {
                control: VirtId(0),
                target: VirtId(9),
            }),
        ];
        assert_eq!(scan_mbu_slice(&garbage, anc), None);
        // An untouched-ancilla slice is eligible with nothing to fix.
        let silent = vec![TraceOp::Gate(Gate::X { target: VirtId(4) })];
        let plan = scan_mbu_slice(&silent, anc).expect("eligible");
        assert_eq!(plan.written, vec![VirtId(4)]);
        assert_eq!(plan.counts.x, 1);
    }

    #[test]
    fn mcx_counts_as_vchain() {
        use crate::gate::Gate;
        use crate::module::Operand;
        let g = Gate::Mcx {
            controls: vec![
                Operand::Param(0),
                Operand::Param(1),
                Operand::Param(2),
                Operand::Param(3),
                Operand::Param(4),
            ],
            target: Operand::Param(5),
        };
        assert_eq!(primitive_count(&g), 7);
    }
}

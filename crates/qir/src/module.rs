//! Programs, modules, and statements.
//!
//! A [`Program`] owns a set of [`Module`]s and designates one as the
//! entry point. Modules reference each other through [`Stmt::Call`],
//! forming a call DAG (validated by [`crate::validate`]). Each module
//! follows the paper's compute–store–uncompute structure: the compute
//! block may scribble on parameters and ancilla, the store block copies
//! results onto fresh output qubits, and the uncompute block — derived
//! mechanically unless overridden — undoes the compute block.

use crate::gate::Gate;

/// Index of a module within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// The raw index into [`Program::modules`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a module id from a raw index.
    ///
    /// Only meaningful for ids obtained from the owning program; using
    /// an arbitrary index with a different program yields panics or
    /// `QirError::UnknownModule` at validation time.
    pub fn from_index(i: usize) -> Self {
        ModuleId(i as u32)
    }
}

/// A qubit name local to a module frame.
///
/// `Param(i)` is the i-th caller-provided qubit; `Ancilla(i)` is the
/// i-th locally allocated scratch qubit. The executor resolves both to
/// program-wide virtual qubits at call time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// Caller-provided qubit (by position).
    Param(usize),
    /// Locally allocated ancilla qubit (by position).
    Ancilla(usize),
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Param(i) => write!(f, "p{i}"),
            Operand::Ancilla(i) => write!(f, "a{i}"),
        }
    }
}

/// One statement in a module block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Apply a gate to module-frame qubits.
    Gate(Gate<Operand>),
    /// Invoke another module, binding `args` (caller-frame qubits) to
    /// the callee's parameters positionally.
    Call {
        /// The called module.
        callee: ModuleId,
        /// Caller-frame qubits bound to the callee's parameters.
        args: Vec<Operand>,
    },
    /// Mid-circuit measurement: record `qubit`'s value into the
    /// module-local classical bit `clbit`. Non-destructive in this
    /// IR's basis-state model.
    Measure {
        /// Qubit being read.
        qubit: Operand,
        /// Module-local classical-bit index (see [`Module::clbits`]).
        clbit: usize,
    },
    /// Classically controlled gate: `gate` fires iff the module-local
    /// classical bit `clbit` holds 1. Using a clbit before any
    /// `Measure` wrote it is a semantic error.
    CondGate {
        /// Module-local classical-bit index guarding the gate.
        clbit: usize,
        /// The guarded gate.
        gate: Gate<Operand>,
    },
}

/// A reversible function with the compute–store–uncompute structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) params: usize,
    pub(crate) ancillas: usize,
    /// Module-local classical bits (measurement targets / gate
    /// guards). 0 for the overwhelmingly common purely unitary module.
    pub(crate) clbits: usize,
    pub(crate) compute: Vec<Stmt>,
    pub(crate) store: Vec<Stmt>,
    /// Explicit uncompute block. `None` means "mechanically invert the
    /// executed compute block", which is what the paper's `Inverse()`
    /// helper produces and what almost every module uses.
    pub(crate) custom_uncompute: Option<Vec<Stmt>>,
}

impl Module {
    /// The module's name (for diagnostics and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of caller-provided qubits.
    pub fn params(&self) -> usize {
        self.params
    }

    /// Number of locally allocated ancilla qubits.
    pub fn ancillas(&self) -> usize {
        self.ancillas
    }

    /// Number of module-local classical bits (0 for purely unitary
    /// modules). Fresh program-wide [`crate::ClbitId`]s are minted for
    /// them at every frame activation.
    pub fn clbits(&self) -> usize {
        self.clbits
    }

    /// Statements of the compute block.
    pub fn compute(&self) -> &[Stmt] {
        &self.compute
    }

    /// Statements of the store block.
    pub fn store(&self) -> &[Stmt] {
        &self.store
    }

    /// Explicit uncompute block, if the author wrote one instead of
    /// relying on mechanical inversion.
    pub fn custom_uncompute(&self) -> Option<&[Stmt]> {
        self.custom_uncompute.as_deref()
    }

    /// Iterates over all statements in compute, store, and any custom
    /// uncompute block.
    pub fn all_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.compute
            .iter()
            .chain(self.store.iter())
            .chain(self.custom_uncompute.iter().flatten())
    }
}

/// A complete modular reversible program.
///
/// Equality is structural (same modules in the same order, same entry),
/// which is what the `.sq` round-trip guarantee in `square-lang` is
/// stated in terms of: `parse(pretty(p)) == p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) modules: Vec<Module>,
    pub(crate) entry: ModuleId,
}

impl Program {
    /// The entry module id.
    pub fn entry(&self) -> ModuleId {
        self.entry
    }

    /// Access a module by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// All modules, indexable by [`ModuleId::index`].
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Number of modules in the program.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when the program has no modules (never produced by the
    /// builder, which requires an entry module).
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Finds a module by name, if present.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Param(2).to_string(), "p2");
        assert_eq!(Operand::Ancilla(0).to_string(), "a0");
    }

    #[test]
    fn module_id_round_trip() {
        let id = ModuleId::from_index(7);
        assert_eq!(id.index(), 7);
    }
}

//! Lowering of multi-controlled gates to the executable gate set.
//!
//! The SQUARE executor (and real NISQ/FT hardware) handles at most
//! 3-qubit primitives. A `k`-control MCX with `k ≥ 3` is lowered into a
//! *generated module* implementing the textbook clean-ancilla V-chain:
//! `k − 2` ancilla accumulate prefix ANDs of the controls in the
//! compute block, a single Toffoli writes the target in the store
//! block, and the mechanical uncompute releases the chain — `2k − 3`
//! Toffolis total.
//!
//! Lowering through a *module* (rather than inline gates) matters: the
//! chain's ancilla flow through the same Allocate/Free discipline as
//! every other ancilla in the program, so SQUARE's LAA/CER heuristics
//! manage them too. This mirrors how reversible-logic synthesis
//! generates ancilla pressure in the first place (Section II-B).

use std::collections::HashMap;

use rayon::prelude::*;

use crate::gate::Gate;
use crate::module::{Module, ModuleId, Operand, Program, Stmt};

/// Rewrites every `Mcx` with 3+ controls into a call to a generated
/// `__mcx{k}` module. Gates with ≤ 2 controls are normalized to
/// `X`/`Cx`/`Ccx`. Returns a new program; the input is unchanged.
///
/// The generated modules are shared across call sites (one per control
/// count) and appended after the existing modules, so existing
/// [`ModuleId`]s stay valid.
///
/// Lowering runs in two phases: a cheap sequential discovery scan
/// assigns [`ModuleId`]s to the needed `__mcx{k}` modules in
/// first-encounter order (identical to the historical single-pass
/// numbering), then every module body is rewritten in parallel against
/// the now-read-only id map — module bodies are independent, so the
/// result is deterministic regardless of core count.
pub fn lower_mcx(program: &Program) -> Program {
    // Phase 1: discovery. Walk statements in program order and give
    // each required chain width its module id, preserving the
    // historical first-encounter numbering.
    let n = program.modules().len();
    let mut generated: HashMap<usize, ModuleId> = HashMap::new();
    let mut tail: Vec<Module> = Vec::new();
    let mut any_mcx = false;
    for module in program.modules() {
        for stmt in module.all_stmts() {
            if let Stmt::Gate(Gate::Mcx { controls, .. }) = stmt {
                any_mcx = true;
                let k = controls.len();
                if k >= 3 && !generated.contains_key(&k) {
                    let id = ModuleId::from_index(n + tail.len());
                    tail.push(build_mcx_module(k));
                    generated.insert(k, id);
                }
            }
        }
    }
    if !any_mcx {
        return program.clone();
    }
    // Phase 2: rewrite. Each module body only reads the shared id map.
    let mut modules: Vec<Module> = program
        .modules()
        .par_iter()
        .map(|module| {
            let mut m = module.clone();
            m.compute = lower_block(m.compute, &generated);
            m.store = lower_block(m.store, &generated);
            m.custom_uncompute = m.custom_uncompute.map(|b| lower_block(b, &generated));
            m
        })
        .collect();
    modules.extend(tail);
    Program {
        modules,
        entry: program.entry(),
    }
}

fn lower_block(stmts: Vec<Stmt>, generated: &HashMap<usize, ModuleId>) -> Vec<Stmt> {
    stmts
        .into_iter()
        .map(|stmt| match stmt {
            Stmt::Gate(Gate::Mcx { controls, target }) => match controls.len() {
                0 => Stmt::Gate(Gate::X { target }),
                1 => Stmt::Gate(Gate::Cx {
                    control: controls[0],
                    target,
                }),
                2 => Stmt::Gate(Gate::Ccx {
                    c0: controls[0],
                    c1: controls[1],
                    target,
                }),
                k => {
                    let id = generated[&k];
                    let mut args = controls;
                    args.push(target);
                    Stmt::Call { callee: id, args }
                }
            },
            other => other,
        })
        .collect()
}

/// Builds `__mcx{k}`: params = k controls then the target; k − 2
/// ancilla form the prefix-AND chain.
fn build_mcx_module(k: usize) -> Module {
    debug_assert!(k >= 3);
    let controls: Vec<Operand> = (0..k).map(Operand::Param).collect();
    let target = Operand::Param(k);
    let anc: Vec<Operand> = (0..k - 2).map(Operand::Ancilla).collect();
    let mut compute = Vec::with_capacity(k - 2);
    compute.push(Stmt::Gate(Gate::Ccx {
        c0: controls[0],
        c1: controls[1],
        target: anc[0],
    }));
    for i in 1..k - 2 {
        compute.push(Stmt::Gate(Gate::Ccx {
            c0: controls[i + 1],
            c1: anc[i - 1],
            target: anc[i],
        }));
    }
    let store = vec![Stmt::Gate(Gate::Ccx {
        c0: controls[k - 1],
        c1: anc[k - 3],
        target,
    })];
    Module {
        name: format!("__mcx{k}"),
        params: k + 1,
        ancillas: k - 2,
        clbits: 0,
        compute,
        store,
        custom_uncompute: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::sem::{run, AlwaysReclaim, TopLevelOnly};
    use crate::validate::validate_program;

    fn mcx_program(k: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, k + 2, |m| {
                let controls: Vec<_> = (0..k).map(|i| m.ancilla(i)).collect();
                let scratch = m.ancilla(k);
                let out = m.ancilla(k + 1);
                m.mcx(&controls, scratch);
                m.store();
                m.cx(scratch, out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    #[test]
    fn lowered_program_validates_and_matches_semantics() {
        for k in 3..=6 {
            let p = mcx_program(k);
            let lowered = lower_mcx(&p);
            validate_program(&lowered).unwrap();
            // Exhaustive over control patterns.
            for bits in 0u32..(1 << k) {
                let inputs: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                let expect = inputs.iter().all(|&b| b);
                let orig = run(&p, &inputs, &mut AlwaysReclaim).unwrap();
                let low = run(&lowered, &inputs, &mut AlwaysReclaim).unwrap();
                let low_lazy = run(&lowered, &inputs, &mut TopLevelOnly).unwrap();
                assert_eq!(orig.outputs[k + 1], expect, "orig k={k} bits={bits:b}");
                assert_eq!(low.outputs[k + 1], expect, "lowered k={k} bits={bits:b}");
                assert_eq!(low_lazy.outputs[k + 1], expect, "lazy k={k} bits={bits:b}");
            }
        }
    }

    #[test]
    fn lowering_shares_generated_modules() {
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 8, |m| {
                let q: Vec<_> = (0..8).map(|i| m.ancilla(i)).collect();
                m.mcx(&q[0..4], q[6]);
                m.mcx(&[q[1], q[2], q[3], q[4]], q[5]);
                m.store();
                m.cx(q[6], q[7]);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let lowered = lower_mcx(&p);
        // One shared __mcx4 module, not two.
        assert_eq!(lowered.len(), 2);
        assert!(lowered.module_by_name("__mcx4").is_some());
    }

    #[test]
    fn small_mcx_normalized_inline() {
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 3, |m| {
                let q: Vec<_> = (0..3).map(|i| m.ancilla(i)).collect();
                m.mcx(&[], q[0]);
                m.mcx(&[q[0]], q[1]);
                m.store();
                m.mcx(&[q[0], q[1]], q[2]);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let lowered = lower_mcx(&p);
        assert_eq!(lowered.len(), 1, "no generated modules");
        let m = lowered.module(lowered.entry());
        assert!(matches!(m.compute()[0], Stmt::Gate(Gate::X { .. })));
        assert!(matches!(m.compute()[1], Stmt::Gate(Gate::Cx { .. })));
        assert!(matches!(m.store()[0], Stmt::Gate(Gate::Ccx { .. })));
    }
}

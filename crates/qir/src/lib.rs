//! # square-qir — reversible-program intermediate representation
//!
//! The IR for modular reversible quantum programs used by the SQUARE
//! compiler (Ding et al., ISCA 2020). A [`Program`] is a collection of
//! [`Module`]s forming a call DAG; each module follows the paper's
//! *Compute–Store–Uncompute* construct (Fig. 6 of the paper): ancilla
//! qubits are allocated on entry, a `compute` block builds intermediate
//! results on them, a `store` block copies results out, and an
//! (implicit, mechanically derived) `uncompute` block can undo the
//! compute block so the ancilla return to |0⟩ and may be reclaimed.
//!
//! Only classical reversible gates appear here (X, CNOT, Toffoli, SWAP
//! and multi-controlled X): the paper's optimization targets the
//! classical-arithmetic portions of quantum algorithms, which these
//! gates express. All of them are self-inverse, which the mechanical
//! uncomputation in [`trace`] exploits.
//!
//! ```
//! use square_qir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! // fun1 from Fig. 6 of the paper: 4 params, 1 ancilla.
//! let fun1 = b.module("fun1", 4, 1, |m| {
//!     let (i0, i1, i2, out) = (m.param(0), m.param(1), m.param(2), m.param(3));
//!     let a = m.ancilla(0);
//!     m.ccx(i0, i1, i2);
//!     m.cx(i2, a);
//!     m.ccx(i1, i0, a);
//!     m.store();
//!     m.cx(a, out);
//! })?;
//! let main = b.module("main", 0, 4, |m| {
//!     let q: Vec<_> = (0..4).map(|i| m.ancilla(i)).collect();
//!     m.call(fun1, &q);
//! })?;
//! let program = b.finish(main)?;
//! assert_eq!(program.module(fun1).name(), "fun1");
//! # Ok::<(), square_qir::QirError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod gate;
pub mod lower;
pub mod module;
pub mod pretty;
pub mod sem;
pub mod trace;
pub mod validate;

mod error;

pub use analysis::{scan_mbu_slice, MbuPlan, ModuleStats, ProgramStats, SliceClassCounts};
pub use builder::{ModuleBuilder, ProgramBuilder};
pub use error::QirError;
pub use gate::Gate;
pub use lower::lower_mcx;
pub use module::{Module, ModuleId, Operand, Program, Stmt};
pub use sem::{BitState, ReclaimOracle, RecordedDecisions};
pub use trace::{invert_slice, invert_slice_into, ClbitId, TraceOp, VirtId};

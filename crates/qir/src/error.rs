use std::fmt;

use crate::module::ModuleId;

/// Errors produced while building or validating a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QirError {
    /// An operand index was out of range for the module that used it.
    OperandOutOfRange {
        /// Module in which the bad operand appeared.
        module: String,
        /// Human-readable description of the offending operand.
        operand: String,
    },
    /// A call referenced a module id that does not exist in the program.
    UnknownModule(ModuleId),
    /// A call passed the wrong number of arguments to its callee.
    ArityMismatch {
        /// Calling module name.
        caller: String,
        /// Called module name.
        callee: String,
        /// Number of parameters the callee declares.
        expected: usize,
        /// Number of arguments the call site passed.
        found: usize,
    },
    /// A call passed the same qubit for two different callee parameters.
    AliasedArguments {
        /// Calling module name.
        caller: String,
        /// Called module name.
        callee: String,
    },
    /// The call graph contains a cycle (reversible programs must form a DAG).
    RecursiveCall {
        /// Name of a module on the cycle.
        module: String,
    },
    /// A gate used the same qubit twice (e.g. CNOT with control == target).
    DuplicatedQubit {
        /// Module in which the gate appeared.
        module: String,
    },
    /// The store block wrote a qubit that the compute block also writes,
    /// or wrote one of the module's own ancilla, breaking the Bennett
    /// compute–store–uncompute discipline (ancilla would not return to
    /// |0⟩ after uncomputation).
    StoreDiscipline {
        /// Module violating the discipline.
        module: String,
        /// Description of the offending qubit.
        detail: String,
    },
    /// The program's entry module must take no parameters from a caller;
    /// entry inputs are modeled as entry-module ancilla.
    EntryHasParams {
        /// Name of the entry module.
        module: String,
    },
    /// A measurement or classically controlled gate referenced a
    /// classical bit the module does not declare.
    ClbitOutOfRange {
        /// Module in which the bad clbit appeared.
        module: String,
        /// The referenced classical-bit index.
        clbit: usize,
        /// How many classical bits the module declares.
        declared: usize,
    },
}

impl fmt::Display for QirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QirError::OperandOutOfRange { module, operand } => {
                write!(f, "operand {operand} out of range in module `{module}`")
            }
            QirError::UnknownModule(id) => write!(f, "unknown module id {id:?}"),
            QirError::ArityMismatch {
                caller,
                callee,
                expected,
                found,
            } => write!(
                f,
                "call from `{caller}` to `{callee}` passes {found} arguments, expected {expected}"
            ),
            QirError::AliasedArguments { caller, callee } => write!(
                f,
                "call from `{caller}` to `{callee}` passes the same qubit twice"
            ),
            QirError::RecursiveCall { module } => {
                write!(f, "recursive call involving module `{module}`")
            }
            QirError::DuplicatedQubit { module } => {
                write!(f, "gate uses the same qubit twice in module `{module}`")
            }
            QirError::StoreDiscipline { module, detail } => {
                write!(
                    f,
                    "store discipline violated in module `{module}`: {detail}"
                )
            }
            QirError::EntryHasParams { module } => {
                write!(f, "entry module `{module}` must not declare parameters")
            }
            QirError::ClbitOutOfRange {
                module,
                clbit,
                declared,
            } => {
                write!(
                    f,
                    "classical bit c{clbit} out of range in module `{module}` ({declared} declared)"
                )
            }
        }
    }
}

impl std::error::Error for QirError {}

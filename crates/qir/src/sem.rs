//! Reference bit-level semantics for modular reversible programs.
//!
//! Because every gate in the IR is classical and reversible, a program
//! acting on a computational-basis state is fully described by boolean
//! evolution. This module executes programs exactly (no machine model,
//! no heuristics) under a pluggable [`ReclaimOracle`] deciding, per
//! call frame, whether to uncompute — the semantic core that the SQUARE
//! compiler's instrumented executor must agree with.
//!
//! The executor doubles as the test oracle for the whole repository:
//!
//! * workload correctness (adders really add, SHA-2 rounds match a
//!   classical implementation, …) is checked against [`run`];
//! * the *ancilla hygiene* invariant — every reclaimed qubit is |0⟩ —
//!   is checked dynamically on every `Free`;
//! * all reclamation policies must compute the same outputs.

use std::fmt;

use crate::gate::Gate;
use crate::module::{ModuleId, Operand, Program, Stmt};
use crate::trace::{invert_slice, ClbitId, TraceOp, VirtId};

/// Decides, at each potential reclamation point, whether the frame
/// should uncompute and reclaim its ancilla. Mirrors the compiler
/// policies of Table I at the semantic level.
pub trait ReclaimOracle {
    /// Returns `true` to uncompute the frame for `module` at call
    /// `depth` (entry = 0), `false` to leave its ancilla as garbage.
    fn reclaim(&mut self, module: ModuleId, depth: usize) -> bool;
}

/// Uncomputes every frame (the paper's *Eager* baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysReclaim;

impl ReclaimOracle for AlwaysReclaim {
    fn reclaim(&mut self, _module: ModuleId, _depth: usize) -> bool {
        true
    }
}

/// Never uncomputes, not even at top level; every ancilla becomes
/// garbage. Useful for measuring raw forward footprints.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverReclaim;

impl ReclaimOracle for NeverReclaim {
    fn reclaim(&mut self, _module: ModuleId, _depth: usize) -> bool {
        false
    }
}

/// Uncomputes only the entry frame (the paper's *Lazy* baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopLevelOnly;

impl ReclaimOracle for TopLevelOnly {
    fn reclaim(&mut self, _module: ModuleId, depth: usize) -> bool {
        depth == 0
    }
}

impl<F: FnMut(ModuleId, usize) -> bool> ReclaimOracle for F {
    fn reclaim(&mut self, module: ModuleId, depth: usize) -> bool {
        self(module, depth)
    }
}

/// Replays a pre-recorded sequence of reclamation decisions in call
/// order — the compiler executor's *actual* choices — so the reference
/// semantics can run in lock-step with any policy, including the CER
/// heuristic whose decisions depend on machine state the semantics do
/// not model. The i-th `reclaim` call returns the i-th recorded bool.
///
/// Both executors visit frames in the same (post-)order, so after a
/// run the oracle must be exactly exhausted; [`RecordedDecisions::in_sync`]
/// is the translation validator's drift check.
#[derive(Debug, Clone)]
pub struct RecordedDecisions {
    decisions: Vec<bool>,
    next: usize,
    overrun: bool,
}

impl RecordedDecisions {
    /// An oracle replaying `decisions` in order.
    pub fn new(decisions: Vec<bool>) -> Self {
        RecordedDecisions {
            decisions,
            next: 0,
            overrun: false,
        }
    }

    /// Decisions consumed so far.
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// Recorded decisions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.decisions.len() - self.next
    }

    /// True once more decisions were demanded than were recorded
    /// (every overrun answers `false`, i.e. "leave garbage").
    pub fn overrun(&self) -> bool {
        self.overrun
    }

    /// True iff the run consumed exactly the recorded sequence — the
    /// reference execution visited the same reclamation points as the
    /// recording executor.
    pub fn in_sync(&self) -> bool {
        !self.overrun && self.remaining() == 0
    }
}

impl ReclaimOracle for RecordedDecisions {
    fn reclaim(&mut self, _module: ModuleId, _depth: usize) -> bool {
        match self.decisions.get(self.next) {
            Some(&d) => {
                self.next += 1;
                d
            }
            None => {
                self.overrun = true;
                false
            }
        }
    }
}

/// Errors surfaced by the reference executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemError {
    /// A qubit was freed while holding |1⟩ — the uncompute block failed
    /// to restore it (broken custom uncompute, or an IR bug).
    DirtyAncilla {
        /// The virtual qubit that was dirty.
        qubit: VirtId,
        /// Module whose frame freed it.
        module: String,
    },
    /// Fewer input bits were supplied than the entry module's ancilla
    /// can hold is fine, but more is an error.
    TooManyInputs {
        /// Inputs supplied.
        supplied: usize,
        /// Entry qubits available.
        capacity: usize,
    },
    /// A classically controlled gate read a classical bit before any
    /// measurement wrote it — classical feedback must be causally
    /// ordered.
    UnmeasuredClbit {
        /// The classical bit read before being written.
        clbit: ClbitId,
        /// Module whose frame read it.
        module: String,
    },
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::DirtyAncilla { qubit, module } => {
                write!(f, "qubit {qubit} freed dirty in module `{module}`")
            }
            SemError::TooManyInputs { supplied, capacity } => {
                write!(f, "{supplied} input bits supplied, entry holds {capacity}")
            }
            SemError::UnmeasuredClbit { clbit, module } => {
                write!(
                    f,
                    "classical bit {clbit} read before measurement in module `{module}`"
                )
            }
        }
    }
}

impl std::error::Error for SemError {}

/// A computational-basis state over virtual qubits.
///
/// Indexed by [`VirtId`]; dead qubits keep their slot (ids are never
/// reused) but are flagged not-live.
#[derive(Debug, Clone, Default)]
pub struct BitState {
    bits: Vec<bool>,
    live: Vec<bool>,
}

impl BitState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a qubit (dead qubits read as their last value).
    pub fn get(&self, v: VirtId) -> bool {
        self.bits[v.index()]
    }

    /// True if the qubit is currently allocated.
    pub fn is_live(&self, v: VirtId) -> bool {
        self.live.get(v.index()).copied().unwrap_or(false)
    }

    /// Number of currently live qubits.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn activate(&mut self, v: VirtId) {
        let i = v.index();
        if i >= self.bits.len() {
            self.bits.resize(i + 1, false);
            self.live.resize(i + 1, false);
        }
        self.bits[i] = false;
        self.live[i] = true;
    }

    fn deactivate(&mut self, v: VirtId) {
        self.live[v.index()] = false;
    }

    /// Applies a gate to the state.
    pub fn apply(&mut self, gate: &Gate<VirtId>) {
        match gate {
            Gate::X { target } => self.bits[target.index()] ^= true,
            Gate::Cx { control, target } => {
                if self.bits[control.index()] {
                    self.bits[target.index()] ^= true;
                }
            }
            Gate::Ccx { c0, c1, target } => {
                if self.bits[c0.index()] && self.bits[c1.index()] {
                    self.bits[target.index()] ^= true;
                }
            }
            Gate::Swap { a, b } => self.bits.swap(a.index(), b.index()),
            Gate::Mcx { controls, target } => {
                if controls.iter().all(|c| self.bits[c.index()]) {
                    self.bits[target.index()] ^= true;
                }
            }
        }
    }
}

/// Result of a reference execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final values of the entry module's ancilla (the program's I/O
    /// register), in declaration order.
    pub outputs: Vec<bool>,
    /// The executed trace, including all uncomputation.
    pub trace: Vec<TraceOp>,
    /// Peak number of simultaneously live qubits.
    pub peak_live: usize,
    /// Qubits still live at program end (entry register + garbage).
    pub final_live: usize,
    /// Total primitive gates executed (incl. uncomputation).
    pub gate_count: u64,
}

struct SemCtx<'p> {
    program: &'p Program,
    state: BitState,
    trace: Vec<TraceOp>,
    next_id: u32,
    /// Next program-wide classical-bit id (fresh ids are minted per
    /// frame activation, mirroring ancilla virtual ids).
    next_clbit: u32,
    /// Classical-bit store, indexed by [`ClbitId`]; `None` until the
    /// first measurement writes the bit.
    clbits: Vec<Option<bool>>,
    live: usize,
    peak: usize,
    gates: u64,
}

impl SemCtx<'_> {
    fn fresh_id(&mut self) -> VirtId {
        let v = VirtId(self.next_id);
        self.next_id += 1;
        v
    }

    fn fresh_clbit(&mut self) -> ClbitId {
        let c = ClbitId(self.next_clbit);
        self.next_clbit += 1;
        c
    }

    fn emit(&mut self, op: TraceOp, module_name: &str) -> Result<(), SemError> {
        match &op {
            TraceOp::Alloc(v) => {
                self.state.activate(*v);
                self.live += 1;
                self.peak = self.peak.max(self.live);
            }
            TraceOp::Free(v) => {
                if self.state.get(*v) {
                    return Err(SemError::DirtyAncilla {
                        qubit: *v,
                        module: module_name.to_string(),
                    });
                }
                self.state.deactivate(*v);
                self.live -= 1;
            }
            TraceOp::Gate(g) => {
                self.state.apply(g);
                self.gates += 1;
            }
            TraceOp::Measure { qubit, clbit } => {
                let i = clbit.index();
                if i >= self.clbits.len() {
                    self.clbits.resize(i + 1, None);
                }
                self.clbits[i] = Some(self.state.get(*qubit));
                self.gates += 1;
            }
            TraceOp::CondGate { clbit, gate } => {
                let Some(Some(value)) = self.clbits.get(clbit.index()).copied() else {
                    return Err(SemError::UnmeasuredClbit {
                        clbit: *clbit,
                        module: module_name.to_string(),
                    });
                };
                if value {
                    self.state.apply(gate);
                }
                self.gates += 1;
            }
        }
        self.trace.push(op);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        args: &[VirtId],
        anc: &[VirtId],
        clbits: &[ClbitId],
        depth: usize,
        oracle: &mut dyn ReclaimOracle,
        module_name: &str,
    ) -> Result<(), SemError> {
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        match stmt {
            Stmt::Gate(g) => {
                let g = g.map(resolve);
                self.emit(TraceOp::Gate(g), module_name)
            }
            Stmt::Call { callee, args: a } => {
                let resolved: Vec<VirtId> = a.iter().map(resolve).collect();
                self.exec_module(*callee, &resolved, depth + 1, oracle)
            }
            Stmt::Measure { qubit, clbit } => {
                let op = TraceOp::Measure {
                    qubit: resolve(qubit),
                    clbit: clbits[*clbit],
                };
                self.emit(op, module_name)
            }
            Stmt::CondGate { clbit, gate } => {
                let op = TraceOp::CondGate {
                    clbit: clbits[*clbit],
                    gate: gate.map(resolve),
                };
                self.emit(op, module_name)
            }
        }
    }

    fn exec_module(
        &mut self,
        id: ModuleId,
        args: &[VirtId],
        depth: usize,
        oracle: &mut dyn ReclaimOracle,
    ) -> Result<(), SemError> {
        let module = self.program.module(id);
        let name = module.name().to_string();
        let anc: Vec<VirtId> = (0..module.ancillas())
            .map(|_| {
                let v = self.fresh_id();
                self.emit(TraceOp::Alloc(v), &name).expect("alloc");
                v
            })
            .collect();
        // Fresh classical bits per activation, mirroring ancilla ids.
        let clbits: Vec<ClbitId> = (0..module.clbits()).map(|_| self.fresh_clbit()).collect();
        let compute_start = self.trace.len();
        for stmt in module.compute() {
            self.exec_stmt(stmt, args, &anc, &clbits, depth, oracle, &name)?;
        }
        let compute_end = self.trace.len();
        for stmt in module.store() {
            self.exec_stmt(stmt, args, &anc, &clbits, depth, oracle, &name)?;
        }
        // Nothing to reclaim in ancilla-less frames (matches the
        // compiler executor's behaviour).
        if anc.is_empty() {
            return Ok(());
        }
        if oracle.reclaim(id, depth) {
            if let Some(custom) = self.program.module(id).custom_uncompute() {
                let custom: Vec<Stmt> = custom.to_vec();
                for stmt in &custom {
                    self.exec_stmt(stmt, args, &anc, &clbits, depth, oracle, &name)?;
                }
            } else {
                let slice: Vec<TraceOp> = self.trace[compute_start..compute_end].to_vec();
                let mut next = self.next_id;
                let inv = invert_slice(&slice, || {
                    let v = VirtId(next);
                    next += 1;
                    v
                });
                self.next_id = next;
                for op in inv {
                    self.emit(op, &name)?;
                }
            }
            // The entry frame's ancilla are the program I/O register and
            // are never freed; every other frame reclaims with a |0⟩ check.
            if depth > 0 {
                for a in anc.iter().rev() {
                    self.emit(TraceOp::Free(*a), &name)?;
                }
            }
        }
        Ok(())
    }
}

/// Executes `program` on the computational-basis input `inputs`
/// (bound to the entry module's first ancilla; missing bits default to
/// 0), reclaiming frames as directed by `oracle`.
///
/// Returns the final entry-register values, the full executed trace,
/// and resource counters.
///
/// # Errors
///
/// * [`SemError::TooManyInputs`] if `inputs` exceeds the entry register.
/// * [`SemError::DirtyAncilla`] if any frame frees a non-|0⟩ qubit —
///   i.e. an uncompute block failed to undo its compute block.
pub fn run(
    program: &Program,
    inputs: &[bool],
    oracle: &mut dyn ReclaimOracle,
) -> Result<RunResult, SemError> {
    let entry = program.module(program.entry());
    if inputs.len() > entry.ancillas() {
        return Err(SemError::TooManyInputs {
            supplied: inputs.len(),
            capacity: entry.ancillas(),
        });
    }
    let mut ctx = SemCtx {
        program,
        state: BitState::new(),
        trace: Vec::new(),
        next_id: 0,
        next_clbit: 0,
        clbits: Vec::new(),
        live: 0,
        peak: 0,
        gates: 0,
    };
    let name = entry.name().to_string();
    // Allocate the entry register and prepare inputs with X gates.
    let anc: Vec<VirtId> = (0..entry.ancillas())
        .map(|_| {
            let v = ctx.fresh_id();
            ctx.emit(TraceOp::Alloc(v), &name).expect("alloc");
            v
        })
        .collect();
    let clbits: Vec<ClbitId> = (0..entry.clbits()).map(|_| ctx.fresh_clbit()).collect();
    for (i, bit) in inputs.iter().enumerate() {
        if *bit {
            ctx.emit(TraceOp::Gate(Gate::X { target: anc[i] }), &name)
                .expect("prep");
        }
    }
    let compute_start = ctx.trace.len();
    for stmt in entry.compute() {
        ctx.exec_stmt(stmt, &[], &anc, &clbits, 0, oracle, &name)?;
    }
    let compute_end = ctx.trace.len();
    for stmt in entry.store() {
        ctx.exec_stmt(stmt, &[], &anc, &clbits, 0, oracle, &name)?;
    }
    if oracle.reclaim(program.entry(), 0) {
        // Same block selection as the child frames (and the compiler
        // executor): an author-supplied uncompute block wins over
        // mechanical inversion of the recorded compute slice.
        if let Some(custom) = entry.custom_uncompute() {
            let custom: Vec<Stmt> = custom.to_vec();
            for stmt in &custom {
                ctx.exec_stmt(stmt, &[], &anc, &clbits, 0, oracle, &name)?;
            }
        } else {
            let slice: Vec<TraceOp> = ctx.trace[compute_start..compute_end].to_vec();
            let mut next = ctx.next_id;
            let inv = invert_slice(&slice, || {
                let v = VirtId(next);
                next += 1;
                v
            });
            ctx.next_id = next;
            for op in inv {
                ctx.emit(op, &name)?;
            }
        }
    }
    let outputs = anc.iter().map(|v| ctx.state.get(*v)).collect();
    Ok(RunResult {
        outputs,
        peak_live: ctx.peak,
        final_live: ctx.live,
        gate_count: ctx.gates,
        trace: ctx.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// fun1 of Fig. 6 wrapped in a compute–store main: the entry's
    /// compute block calls fun1 writing into a scratch output, and the
    /// entry's store block copies the result to a final output qubit
    /// that survives the top-level uncompute.
    fn fig6_program() -> Program {
        let mut b = ProgramBuilder::new();
        let fun1 = b
            .module("fun1", 4, 1, |m| {
                let (i0, i1, i2, out) = (m.param(0), m.param(1), m.param(2), m.param(3));
                let a = m.ancilla(0);
                m.ccx(i0, i1, i2);
                m.cx(i2, a);
                m.ccx(i1, i0, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 5, |m| {
                let q: Vec<_> = (0..4).map(|i| m.ancilla(i)).collect();
                let final_out = m.ancilla(4);
                m.call(fun1, &q);
                m.store();
                m.cx(q[3], final_out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn fig6_reference(i0: bool, i1: bool, i2: bool) -> bool {
        // After CCX: i2' = i2 ⊕ (i0∧i1); CX(i2',a): a = i2';
        // CCX(i1,i0,a): a = i2' ⊕ (i0∧i1) = i2. Store copies a to out.
        let i2p = i2 ^ (i0 && i1);
        i2p ^ (i0 && i1)
    }

    #[test]
    fn all_policies_compute_same_outputs() {
        let p = fig6_program();
        for bits in 0..8u8 {
            let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected = fig6_reference(inputs[0], inputs[1], inputs[2]);
            let eager = run(&p, &inputs, &mut AlwaysReclaim).unwrap();
            let lazy = run(&p, &inputs, &mut TopLevelOnly).unwrap();
            let never = run(&p, &inputs, &mut NeverReclaim).unwrap();
            assert_eq!(eager.outputs[4], expected, "eager, input {bits:03b}");
            assert_eq!(lazy.outputs[4], expected, "lazy, input {bits:03b}");
            assert_eq!(never.outputs[4], expected, "never, input {bits:03b}");
        }
    }

    #[test]
    fn eager_uses_fewer_live_qubits_than_never() {
        let p = fig6_program();
        let eager = run(&p, &[true, true, false], &mut AlwaysReclaim).unwrap();
        let never = run(&p, &[true, true, false], &mut NeverReclaim).unwrap();
        assert!(eager.final_live < never.final_live);
        // fun1's ancilla is garbage under NeverReclaim:
        assert_eq!(never.final_live, 6);
        assert_eq!(eager.final_live, 5);
    }

    #[test]
    fn lazy_top_level_sweeps_garbage() {
        let p = fig6_program();
        let lazy = run(&p, &[true, true, true], &mut TopLevelOnly).unwrap();
        // After the top-level uncompute, only the entry register lives:
        // fun1's garbage ancilla was swept by the entry's inverse slice.
        assert_eq!(lazy.final_live, 5);
        // Inputs are preserved (uncompute undoes compute, not the prep).
        assert_eq!(&lazy.outputs[..3], &[true, true, true]);
        // The scratch output q[3] is restored to |0⟩ by the uncompute.
        assert!(!lazy.outputs[3]);
    }

    #[test]
    fn eager_costs_more_gates_than_lazy_per_level() {
        // Two-level nesting: eager recomputes the child inside the
        // parent's uncompute; lazy replays everything exactly once.
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let parent = b
            .module("parent", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let t = m.ancilla(0);
                m.call(child, &[x, t]);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, po, fo) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.call(parent, &[x, po]);
                m.store();
                m.cx(po, fo);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let eager = run(&p, &[], &mut AlwaysReclaim).unwrap();
        let lazy = run(&p, &[], &mut TopLevelOnly).unwrap();
        assert_eq!(eager.outputs, lazy.outputs);
        assert!(eager.outputs[2], "x=1 propagates to final out");
        assert!(
            eager.gate_count > lazy.gate_count,
            "recursive recomputation: eager {} vs lazy {}",
            eager.gate_count,
            lazy.gate_count
        );
    }

    #[test]
    fn dirty_custom_uncompute_detected() {
        let mut b = ProgramBuilder::new();
        let bad = b
            .module("bad", 1, 1, |m| {
                let x = m.param(0);
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.uncompute();
                // wrong: empty uncompute block leaves `a` holding x
            })
            .unwrap();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.x(x);
                m.call(bad, &[x]);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let err = run(&p, &[], &mut AlwaysReclaim).unwrap_err();
        assert!(matches!(err, SemError::DirtyAncilla { .. }));
    }

    #[test]
    fn recorded_decisions_replay_in_order() {
        let p = fig6_program();
        // Frame order is post-order: fun1 first, entry last. Reclaim
        // fun1, skip the entry → fun1's ancilla is freed, the entry's
        // compute survives (q[3] still holds the stored value).
        let mut oracle = RecordedDecisions::new(vec![true, false]);
        let r = run(&p, &[true, true, false], &mut oracle).unwrap();
        assert!(oracle.in_sync());
        assert_eq!(oracle.consumed(), 2);
        assert_eq!(r.final_live, 5, "fun1's ancilla reclaimed");
        // Same input through the always-reclaim path for the output.
        let expected = run(&p, &[true, true, false], &mut AlwaysReclaim)
            .unwrap()
            .outputs[4];
        assert_eq!(r.outputs[4], expected);
    }

    #[test]
    fn recorded_decisions_flag_drift() {
        let p = fig6_program();
        // Too few: the run demands 2 decisions.
        let mut short = RecordedDecisions::new(vec![true]);
        run(&p, &[], &mut short).unwrap();
        assert!(short.overrun());
        assert!(!short.in_sync());
        // Too many: one left over.
        let mut long = RecordedDecisions::new(vec![true, false, true]);
        run(&p, &[], &mut long).unwrap();
        assert!(!long.overrun());
        assert_eq!(long.remaining(), 1);
        assert!(!long.in_sync());
    }

    #[test]
    fn entry_custom_uncompute_is_used() {
        // An entry whose author wrote the uncompute by hand (undo the
        // compute CX explicitly). The final X on `flag` inside the
        // custom block proves the block ran: mechanical inversion
        // would leave flag at 0.
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, t, flag) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.cx(x, t);
                m.store();
                m.uncompute();
                m.cx(x, t);
                m.x(x);
                m.x(flag);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let r = run(&p, &[], &mut AlwaysReclaim).unwrap();
        assert_eq!(r.outputs, vec![false, false, true]);
        let skipped = run(&p, &[], &mut NeverReclaim).unwrap();
        assert_eq!(skipped.outputs, vec![true, true, false]);
    }

    #[test]
    fn too_many_inputs_rejected() {
        let p = fig6_program();
        let err = run(&p, &[false; 9], &mut AlwaysReclaim).unwrap_err();
        assert!(matches!(err, SemError::TooManyInputs { .. }));
    }

    /// A child that computes into its ancilla, stores, then resets the
    /// ancilla with the source-level MBU idiom (measure + cond-X) in
    /// its compute block — mechanical inversion must replay the idiom
    /// soundly under every policy.
    fn mbu_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.call(child, &[x, out]);
                m.measure(x, 0);
                m.cond_x(0, x);
                m.cond_x(0, x);
                m.store();
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    #[test]
    fn measurement_feedback_runs_under_all_policies() {
        let p = mbu_program();
        for (label, oracle) in [
            ("eager", &mut AlwaysReclaim as &mut dyn ReclaimOracle),
            ("lazy", &mut TopLevelOnly),
            ("never", &mut NeverReclaim),
        ] {
            let r = run(&p, &[], oracle).unwrap();
            // The paired cond-X cancels itself, so outputs match the
            // plain child program: out = 1 under garbage policies; the
            // entry uncompute rolls everything back under reclaim.
            assert_eq!(r.outputs.len(), 2, "{label}");
            assert!(
                r.trace
                    .iter()
                    .any(|op| matches!(op, TraceOp::Measure { .. })),
                "{label}: measurement recorded in trace"
            );
        }
        // Gate counts include measure + both cond gates.
        let never = run(&p, &[], &mut NeverReclaim).unwrap();
        let counted = crate::trace::gate_count(&never.trace);
        assert_eq!(never.gate_count, counted, "counters agree with trace");
    }

    #[test]
    fn mechanical_inversion_of_measured_compute_restores_state() {
        // Under AlwaysReclaim the entry sweeps its compute slice —
        // including the measure/cond ops — and every ancilla must
        // return to |0⟩ (a DirtyAncilla error otherwise).
        let p = mbu_program();
        let eager = run(&p, &[], &mut AlwaysReclaim).unwrap();
        assert_eq!(eager.outputs, vec![false, false]);
        let lazy = run(&p, &[], &mut TopLevelOnly).unwrap();
        assert_eq!(lazy.outputs, eager.outputs);
    }

    #[test]
    fn cond_gate_before_measure_is_an_error() {
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.declare_clbits(1);
                m.cond_x(0, x);
                m.store();
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let err = run(&p, &[], &mut NeverReclaim).unwrap_err();
        assert!(matches!(
            err,
            SemError::UnmeasuredClbit {
                clbit: ClbitId(0),
                ..
            }
        ));
    }

    #[test]
    fn clbit_ids_are_fresh_per_activation() {
        // Two calls to a measuring child must not share classical bits.
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 1, 1, |m| {
                let x = m.param(0);
                let a = m.ancilla(0);
                m.cx(x, a);
                m.measure(a, 0);
                m.cond_x(0, a);
                m.store();
            })
            .unwrap();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.x(x);
                m.call(child, &[x]);
                m.call(child, &[x]);
                m.store();
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let r = run(&p, &[], &mut NeverReclaim).unwrap();
        let measured: Vec<ClbitId> = r
            .trace
            .iter()
            .filter_map(|op| match op {
                TraceOp::Measure { clbit, .. } => Some(*clbit),
                _ => None,
            })
            .collect();
        assert_eq!(measured.len(), 2);
        assert_ne!(measured[0], measured[1], "fresh clbit per activation");
    }
}

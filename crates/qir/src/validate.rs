//! Program well-formedness checks.
//!
//! Two layers: per-module checks (operand ranges, gate well-formedness,
//! call arity — run at build time) and whole-program checks (call-graph
//! acyclicity, entry signature, and the Bennett *store discipline*).
//!
//! ## Store discipline
//!
//! A module executes as `compute ; store ; compute⁻¹` when it reclaims
//! its ancilla. The mechanical inverse restores every qubit the compute
//! block touched **provided the store block did not modify any qubit
//! the compute block touches**: an op replayed in `compute⁻¹` reads its
//! control qubits, and a store-block write to one of them would make
//! the inverse diverge, leaving ancilla dirty. We therefore require:
//!
//! 1. the *may-write set* of the store block is disjoint from the
//!    *touch set* of the compute block, and
//! 2. the store block does not write the module's own ancilla (they
//!    must be |0⟩ after uncomputation).
//!
//! For calls, the may-write set is computed transitively: a call may
//! write precisely the arguments bound to parameters in the callee's
//! transitive may-write set; it touches all its arguments.

use std::collections::HashSet;

use crate::error::QirError;
use crate::module::{Module, Operand, Program, Stmt};

/// Validates a single module against the modules registered before it.
///
/// # Errors
///
/// Returns operand-range, arity, duplicate-operand, or unknown-callee
/// errors. Call-graph and store-discipline checks happen in
/// [`validate_program`].
pub fn validate_module(module: &Module, existing: &[Module]) -> Result<(), QirError> {
    let check_operand = |op: &Operand| -> Result<(), QirError> {
        let ok = match op {
            Operand::Param(i) => *i < module.params,
            Operand::Ancilla(i) => *i < module.ancillas,
        };
        if ok {
            Ok(())
        } else {
            Err(QirError::OperandOutOfRange {
                module: module.name.clone(),
                operand: op.to_string(),
            })
        }
    };
    for stmt in module.all_stmts() {
        match stmt {
            Stmt::Gate(g) => {
                let mut first_err = None;
                g.for_each_qubit(|q| {
                    if first_err.is_none() {
                        first_err = check_operand(q).err();
                    }
                });
                if let Some(e) = first_err {
                    return Err(e);
                }
                if g.has_duplicate_operand() {
                    return Err(QirError::DuplicatedQubit {
                        module: module.name.clone(),
                    });
                }
            }
            Stmt::Call { callee, args } => {
                for a in args {
                    check_operand(a)?;
                }
                let target = existing
                    .get(callee.index())
                    .ok_or(QirError::UnknownModule(*callee))?;
                if target.params != args.len() {
                    return Err(QirError::ArityMismatch {
                        caller: module.name.clone(),
                        callee: target.name.clone(),
                        expected: target.params,
                        found: args.len(),
                    });
                }
                for (i, a) in args.iter().enumerate() {
                    if args[i + 1..].contains(a) {
                        return Err(QirError::AliasedArguments {
                            caller: module.name.clone(),
                            callee: target.name.clone(),
                        });
                    }
                }
            }
            Stmt::Measure { qubit, clbit } => {
                check_operand(qubit)?;
                check_clbit(module, *clbit)?;
            }
            Stmt::CondGate { clbit, gate } => {
                check_clbit(module, *clbit)?;
                let mut first_err = None;
                gate.for_each_qubit(|q| {
                    if first_err.is_none() {
                        first_err = check_operand(q).err();
                    }
                });
                if let Some(e) = first_err {
                    return Err(e);
                }
                if gate.has_duplicate_operand() {
                    return Err(QirError::DuplicatedQubit {
                        module: module.name.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_clbit(module: &Module, clbit: usize) -> Result<(), QirError> {
    if clbit < module.clbits {
        Ok(())
    } else {
        Err(QirError::ClbitOutOfRange {
            module: module.name.clone(),
            clbit,
            declared: module.clbits,
        })
    }
}

/// Validates the whole program: entry signature, call-graph acyclicity,
/// per-module checks, and the store discipline.
///
/// # Errors
///
/// Returns the first violation found; see [`QirError`].
pub fn validate_program(program: &Program) -> Result<(), QirError> {
    let entry = program.module(program.entry());
    if entry.params != 0 {
        return Err(QirError::EntryHasParams {
            module: entry.name.clone(),
        });
    }
    for (i, m) in program.modules.iter().enumerate() {
        // Re-run per-module checks treating every module as visible
        // (ids may point anywhere as long as the graph is acyclic).
        validate_module_in(m, program, i)?;
    }
    check_acyclic(program)?;
    let may_write = compute_may_write_sets(program);
    for (i, m) in program.modules.iter().enumerate() {
        let is_entry = i == program.entry().index();
        check_store_discipline(m, &may_write, is_entry)?;
    }
    Ok(())
}

fn validate_module_in(module: &Module, program: &Program, _idx: usize) -> Result<(), QirError> {
    validate_module(module, &program.modules)
}

fn check_acyclic(program: &Program) -> Result<(), QirError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = program.modules.len();
    let mut color = vec![Color::White; n];
    // Iterative DFS to avoid stack overflow on deep call graphs.
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Grey;
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            let callees: Vec<usize> = program.modules[node]
                .all_stmts()
                .filter_map(|s| match s {
                    Stmt::Call { callee, .. } => Some(callee.index()),
                    _ => None,
                })
                .collect();
            if *edge < callees.len() {
                let next = callees[*edge];
                *edge += 1;
                match color[next] {
                    Color::Grey => {
                        return Err(QirError::RecursiveCall {
                            module: program.modules[next].name.clone(),
                        });
                    }
                    Color::White => {
                        color[next] = Color::Grey;
                        stack.push((next, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// For each module, the set of *parameter indices* it may write
/// (directly or through calls), considering compute and store blocks.
fn compute_may_write_sets(program: &Program) -> Vec<HashSet<usize>> {
    let n = program.modules.len();
    let mut sets: Vec<Option<HashSet<usize>>> = vec![None; n];
    for i in 0..n {
        may_write_of(program, i, &mut sets);
    }
    sets.into_iter().map(|s| s.unwrap_or_default()).collect()
}

fn may_write_of(
    program: &Program,
    idx: usize,
    memo: &mut Vec<Option<HashSet<usize>>>,
) -> HashSet<usize> {
    if let Some(s) = &memo[idx] {
        return s.clone();
    }
    // Mark in-progress with an empty set; cycles are rejected separately
    // by `check_acyclic`, so this is only a guard against runaway
    // recursion on malformed inputs.
    memo[idx] = Some(HashSet::new());
    let module = &program.modules[idx];
    let mut out = HashSet::new();
    for stmt in module.all_stmts() {
        for op in stmt_written_operands(program, stmt, memo) {
            if let Operand::Param(p) = op {
                out.insert(p);
            }
        }
    }
    memo[idx] = Some(out.clone());
    out
}

/// Operands (caller frame) that a statement may write.
fn stmt_written_operands(
    program: &Program,
    stmt: &Stmt,
    memo: &mut Vec<Option<HashSet<usize>>>,
) -> Vec<Operand> {
    match stmt {
        Stmt::Gate(g) => g.written_qubits(),
        Stmt::Call { callee, args } => {
            let w = may_write_of(program, callee.index(), memo);
            w.into_iter().filter_map(|p| args.get(p).copied()).collect()
        }
        // Measurement is non-destructive in the basis-state model: it
        // reads the qubit and writes only the classical bit.
        Stmt::Measure { .. } => Vec::new(),
        Stmt::CondGate { gate, .. } => gate.written_qubits(),
    }
}

fn check_store_discipline(
    module: &Module,
    may_write: &[HashSet<usize>],
    is_entry: bool,
) -> Result<(), QirError> {
    // Touch set of the compute block (everything any compute statement
    // can read or write).
    let mut touched: HashSet<Operand> = HashSet::new();
    for stmt in &module.compute {
        match stmt {
            Stmt::Gate(g) => g.for_each_qubit(|q| {
                touched.insert(*q);
            }),
            Stmt::Call { args, .. } => touched.extend(args.iter().copied()),
            Stmt::Measure { qubit, .. } => {
                touched.insert(*qubit);
            }
            Stmt::CondGate { gate, .. } => gate.for_each_qubit(|q| {
                touched.insert(*q);
            }),
        }
    }
    // May-write set of each store statement.
    for stmt in &module.store {
        let written: Vec<Operand> = match stmt {
            Stmt::Gate(g) => g.written_qubits(),
            Stmt::Call { callee, args } => may_write[callee.index()]
                .iter()
                .filter_map(|p| args.get(*p).copied())
                .collect(),
            Stmt::Measure { .. } => Vec::new(),
            Stmt::CondGate { gate, .. } => gate.written_qubits(),
        };
        for w in written {
            // The entry module's ancilla are the program I/O register
            // (never freed), so storing into its own compute-untouched
            // ancilla is the normal way to produce final outputs.
            if let Operand::Ancilla(i) = w {
                if !is_entry {
                    return Err(QirError::StoreDiscipline {
                        module: module.name.clone(),
                        detail: format!("store block writes own ancilla a{i}"),
                    });
                }
            }
            if touched.contains(&w) {
                return Err(QirError::StoreDiscipline {
                    module: module.name.clone(),
                    detail: format!("store block writes {w}, which the compute block touches"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::error::QirError;

    #[test]
    fn accepts_disciplined_store() {
        let mut b = ProgramBuilder::new();
        let f = b
            .module("f", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.call(f, &[x, out]);
            })
            .unwrap();
        assert!(b.finish(main).is_ok());
    }

    #[test]
    fn rejects_store_writing_computed_qubit() {
        let mut b = ProgramBuilder::new();
        let r = b.module("bad", 2, 1, |m| {
            let (x, out) = (m.param(0), m.param(1));
            let a = m.ancilla(0);
            m.cx(x, a);
            m.cx(x, out); // compute touches `out`
            m.store();
            m.cx(a, out); // store writes `out` => diverging inverse
        });
        let id = r.unwrap(); // per-module checks pass
        let err = {
            let mut b2 = ProgramBuilder::new();
            // rebuild under a main that wraps it
            let bad = b2
                .module("bad", 2, 1, |m| {
                    let (x, out) = (m.param(0), m.param(1));
                    let a = m.ancilla(0);
                    m.cx(x, a);
                    m.cx(x, out);
                    m.store();
                    m.cx(a, out);
                })
                .unwrap();
            let main = b2
                .module("main", 0, 2, |m| {
                    let (x, out) = (m.ancilla(0), m.ancilla(1));
                    m.call(bad, &[x, out]);
                })
                .unwrap();
            b2.finish(main).unwrap_err()
        };
        assert!(matches!(err, QirError::StoreDiscipline { .. }));
        let _ = id;
    }

    #[test]
    fn rejects_store_writing_ancilla() {
        let mut b = ProgramBuilder::new();
        let bad = b
            .module("bad", 1, 1, |m| {
                let x = m.param(0);
                let a = m.ancilla(0);
                let _ = x;
                m.store();
                m.x(a);
            })
            .unwrap();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.call(bad, &[x]);
            })
            .unwrap();
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, QirError::StoreDiscipline { .. }));
    }

    #[test]
    fn transitive_store_write_through_call_is_checked() {
        let mut b = ProgramBuilder::new();
        // copy(src, dst): writes dst only.
        let copy = b
            .module("copy", 2, 0, |m| {
                let (src, dst) = (m.param(0), m.param(1));
                m.store();
                m.cx(src, dst);
            })
            .unwrap();
        // ok: store-calls copy writing an untouched param.
        let ok = b
            .module("ok", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.call(copy, &[a, out]);
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.call(ok, &[x, out]);
            })
            .unwrap();
        assert!(b.finish(main).is_ok());

        // bad: store-calls copy writing a qubit compute touched.
        let mut b = ProgramBuilder::new();
        let copy = b
            .module("copy", 2, 0, |m| {
                let (src, dst) = (m.param(0), m.param(1));
                m.store();
                m.cx(src, dst);
            })
            .unwrap();
        let bad = b
            .module("bad", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.cx(x, out);
                m.store();
                m.call(copy, &[a, out]);
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.call(bad, &[x, out]);
            })
            .unwrap();
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, QirError::StoreDiscipline { .. }));
    }

    #[test]
    fn rejects_out_of_range_clbit() {
        use crate::module::{Module, Operand, Stmt};
        let module = Module {
            name: "bad".into(),
            params: 0,
            ancillas: 1,
            clbits: 1,
            compute: vec![Stmt::Measure {
                qubit: Operand::Ancilla(0),
                clbit: 3,
            }],
            store: vec![],
            custom_uncompute: None,
        };
        let err = super::validate_module(&module, &[]).unwrap_err();
        assert!(matches!(
            err,
            QirError::ClbitOutOfRange {
                clbit: 3,
                declared: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut b = ProgramBuilder::new();
        let f = b
            .module("f", 1, 0, |m| {
                let x = m.param(0);
                m.x(x);
            })
            .unwrap();
        let err = b.finish(f).unwrap_err();
        assert!(matches!(err, QirError::EntryHasParams { .. }));
    }
}

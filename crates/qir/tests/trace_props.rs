//! Property tests for the mechanical-uncomputation core: for arbitrary
//! generated traces, replaying `invert_slice` of a slice undoes it
//! exactly — including nested alloc/free structure — and the inverse
//! of the inverse has the same cost.

use proptest::prelude::*;
use square_qir::{invert_slice, ClbitId, Gate, TraceOp, VirtId};
use std::collections::HashMap;

/// Applies trace ops to a sparse bit state and a classical-bit side
/// channel; panics on structural violations (double alloc, free of
/// dead qubit).
fn apply(ops: &[TraceOp], bits: &mut HashMap<VirtId, bool>, clbits: &mut HashMap<ClbitId, bool>) {
    for op in ops {
        match op {
            TraceOp::Alloc(v) => {
                assert!(bits.insert(*v, false).is_none(), "double alloc");
            }
            TraceOp::Free(v) => {
                bits.remove(v).expect("free of dead qubit");
            }
            TraceOp::Gate(g) => apply_gate(g, bits),
            TraceOp::Measure { qubit, clbit } => {
                clbits.insert(*clbit, bits[qubit]);
            }
            TraceOp::CondGate { clbit, gate } => {
                if clbits[clbit] {
                    apply_gate(gate, bits);
                }
            }
        }
    }
}

fn apply_gate(g: &Gate<VirtId>, bits: &mut HashMap<VirtId, bool>) {
    let get = |q: &VirtId| bits[q];
    match g {
        Gate::X { target } => *bits.get_mut(target).unwrap() ^= true,
        Gate::Cx { control, target } => {
            if get(control) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Ccx { c0, c1, target } => {
            if get(c0) && get(c1) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Swap { a, b } => {
            let (va, vb) = (get(a), get(b));
            bits.insert(*a, vb);
            bits.insert(*b, va);
        }
        Gate::Mcx { controls, target } => {
            if controls.iter().all(get) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
    }
}

/// Generates a structurally valid trace over `ext` pre-existing qubits
/// (ids 0..ext) plus nested alloc/gate/free activity, from a byte
/// script. Allocated-inside ids start at `ext`.
fn trace_from_script(ext: u32, script: &[u8]) -> Vec<TraceOp> {
    let mut live: Vec<VirtId> = (0..ext).map(VirtId).collect();
    let mut inner: Vec<VirtId> = Vec::new(); // allocated in-slice, still clean
    let mut dirty: Vec<VirtId> = Vec::new(); // allocated in-slice, gated since
    let mut next = ext;
    let mut next_clbit = 0u32;
    let mut ops = Vec::new();
    for chunk in script.chunks(4) {
        let (a, b, c, d) = (
            chunk[0],
            chunk.get(1).copied().unwrap_or(1),
            chunk.get(2).copied().unwrap_or(2),
            chunk.get(3).copied().unwrap_or(3),
        );
        match a % 5 {
            0 => {
                let v = VirtId(next);
                next += 1;
                inner.push(v);
                live.push(v);
                ops.push(TraceOp::Alloc(v));
            }
            1 if b % 2 == 0 && !inner.is_empty() => {
                // Unitary free of an in-slice qubit. It must be |0⟩ at
                // runtime, so emit a self-cancelling pair first (net
                // zero) and free only qubits we allocated and never
                // gated.
                let v = inner.pop().unwrap();
                live.retain(|q| *q != v);
                ops.push(TraceOp::Gate(Gate::X { target: v }));
                ops.push(TraceOp::Gate(Gate::X { target: v }));
                ops.push(TraceOp::Free(v));
            }
            1 if !dirty.is_empty() || !inner.is_empty() => {
                // Measurement-based free: measure-and-correct resets
                // the qubit to |0⟩ whatever its value, so *dirty*
                // in-slice qubits can be reclaimed too — the whole
                // point of MBU.
                let v = dirty.pop().unwrap_or_else(|| inner.pop().unwrap());
                live.retain(|q| *q != v);
                let clbit = ClbitId(next_clbit);
                next_clbit += 1;
                ops.push(TraceOp::Measure { qubit: v, clbit });
                ops.push(TraceOp::CondGate {
                    clbit,
                    gate: Gate::X { target: v },
                });
                ops.push(TraceOp::Free(v));
            }
            _ if live.len() >= 3 => {
                let q0 = live[b as usize % live.len()];
                let q1 = live[c as usize % live.len()];
                let q2 = live[d as usize % live.len()];
                // A gated in-slice qubit may become dirty; it can no
                // longer be freed unitarily (a dirty free is an
                // irreversible discard, which the real executors
                // forbid) — it moves to the MBU-reclaimable pool.
                for q in [q0, q1, q2] {
                    if inner.contains(&q) {
                        inner.retain(|i| *i != q);
                        dirty.push(q);
                    }
                }
                if q0 != q1 && q1 != q2 && q0 != q2 {
                    match a % 3 {
                        0 => ops.push(TraceOp::Gate(Gate::X { target: q0 })),
                        1 => ops.push(TraceOp::Gate(Gate::Cx {
                            control: q0,
                            target: q1,
                        })),
                        _ => ops.push(TraceOp::Gate(Gate::Ccx {
                            c0: q0,
                            c1: q1,
                            target: q2,
                        })),
                    }
                }
            }
            _ => {}
        }
    }
    ops
}

proptest! {
    /// slice ⨟ invert(slice) restores every pre-existing qubit and
    /// leaves no leaked allocations.
    #[test]
    fn inversion_restores_state(
        ext in 3u32..8,
        script in proptest::collection::vec(any::<u8>(), 0..200),
        seed_bits in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let slice = trace_from_script(ext, &script);
        let mut next = 10_000u32;
        let inv = invert_slice(&slice, || {
            let v = VirtId(next);
            next += 1;
            v
        });
        let mut bits: HashMap<VirtId, bool> = (0..ext)
            .map(|i| (VirtId(i), seed_bits[i as usize % seed_bits.len()]))
            .collect();
        let before = bits.clone();
        // The classical side channel persists across the inverse: the
        // inverted CondGate replays against the outcome recorded by
        // the forward Measure.
        let mut clbits: HashMap<ClbitId, bool> = HashMap::new();
        apply(&slice, &mut bits, &mut clbits);
        apply(&inv, &mut bits, &mut clbits);
        // Only the original external qubits remain, with original values.
        for (v, val) in &before {
            prop_assert_eq!(bits.get(v), Some(val), "qubit {} changed", v);
        }
        prop_assert_eq!(bits.len(), before.len(), "leaked allocations");
    }

    /// Inversion preserves gate count and swaps alloc/free counts.
    #[test]
    fn inversion_preserves_costs(
        ext in 3u32..8,
        script in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let slice = trace_from_script(ext, &script);
        let mut next = 20_000u32;
        let inv = invert_slice(&slice, || {
            let v = VirtId(next);
            next += 1;
            v
        });
        let count = |ops: &[TraceOp]| {
            let mut g = 0u64;
            let mut a = 0u64;
            let mut f = 0u64;
            for op in ops {
                match op {
                    TraceOp::Gate(_) | TraceOp::Measure { .. } | TraceOp::CondGate { .. } => g += 1,
                    TraceOp::Alloc(_) => a += 1,
                    TraceOp::Free(_) => f += 1,
                }
            }
            (g, a, f)
        };
        let (g1, a1, f1) = count(&slice);
        let (g2, a2, f2) = count(&inv);
        prop_assert_eq!(g1, g2, "gate counts differ");
        prop_assert_eq!(a1, f2, "allocs must become frees");
        prop_assert_eq!(f1, a2, "frees must become allocs");
    }
}

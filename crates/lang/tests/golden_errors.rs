//! Golden snapshots of rendered parse/resolution diagnostics.
//!
//! Each case asserts the *exact* rendered report — file:line:column
//! anchors, caret placement, and "did you mean" hints are all part of
//! the frontend's contract (the acceptance bar for the `.sq` frontend
//! is that errors carry usable spans). If an intentional wording
//! change breaks one of these, update the expected string alongside.

use square_lang::{parse_files, parse_program, render, MapLoader};

fn report(source: &str) -> String {
    let diags = parse_program(source).expect_err("source must not parse");
    render(source, "prog.sq", &diags)
}

/// Multi-file variant: `root.sq` resolved against in-memory units,
/// diagnostics rendered through the source map so each anchors in the
/// file it came from.
fn multi_report(root: &str, files: &[(&str, &str)]) -> String {
    let mut loader = MapLoader::new();
    for (name, source) in files {
        loader.insert(*name, *source);
    }
    let (map, parsed) = parse_files("root.sq", root, &loader);
    let diags = parsed.expect_err("source must not resolve");
    map.render(&diags)
}

#[test]
fn golden_unknown_gate_with_suggestion() {
    let src = "\
entry module main(0 params, 2 ancilla) {
  compute {
    ccz a0 a1;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: unknown gate `ccz`
  --> prog.sq:3:5
   |
 3 |     ccz a0 a1;
   |     ^^^ did you mean `ccx`?
"
    );
}

#[test]
fn golden_call_arity_mismatch() {
    let src = "\
module f(2 params, 0 ancilla) {
  compute {
    cx p0 p1;
  }
}
entry module main(0 params, 3 ancilla) {
  compute {
    call f(a0, a1, a2);
  }
}
";
    assert_eq!(
        report(src),
        "\
error: call to `f` passes 3 arguments, but it declares 2 params
  --> prog.sq:8:5
   |
 8 |     call f(a0, a1, a2);
   |     ^^^^^^^^^^^^^^^^^^^
"
    );
}

#[test]
fn golden_unknown_module_with_suggestion() {
    let src = "\
module fun1(1 params, 0 ancilla) {
  compute {
    x p0;
  }
}
entry module main(0 params, 1 ancilla) {
  compute {
    call fun2(a0);
  }
}
";
    assert_eq!(
        report(src),
        "\
error: call to unknown module `fun2`
  --> prog.sq:8:10
   |
 8 |     call fun2(a0);
   |          ^^^^ did you mean `fun1`?
"
    );
}

#[test]
fn golden_duplicate_entry() {
    let src = "\
entry module a(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
entry module b(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: duplicate `entry` marker on module `b`
  --> prog.sq:6:1
   |
 6 | entry module b(0 params, 1 ancilla) {
   | ^^^^^ module `a` is already the entry
"
    );
}

#[test]
fn golden_operand_out_of_range() {
    let src = "\
entry module main(0 params, 2 ancilla) {
  compute {
    cx a0 a7;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: operand `a7` is out of range: module `main` declares 2 ancillas
  --> prog.sq:3:11
   |
 3 |     cx a0 a7;
   |           ^^
"
    );
}

#[test]
fn golden_missing_entry() {
    let src = "\
module lonely(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: no module is marked `entry`
  --> prog.sq:1:8
   |
 1 | module lonely(0 params, 1 ancilla) {
   |        ^^^^^^ mark the top-level module: `entry module …`
"
    );
}

#[test]
fn golden_multi_error_report() {
    // One parse collects every problem: an unknown gate, a bad gate
    // arity, and a missing semicolon, each with its own anchor.
    let src = "\
entry module main(0 params, 3 ancilla) {
  compute {
    nott a0;
    cx a0;
    x a1
  }
}
";
    assert_eq!(
        report(src),
        "\
error: unknown gate `nott`
  --> prog.sq:3:5
   |
 3 |     nott a0;
   |     ^^^^ did you mean `not`?

error: `cx` takes 2 operands (control, target), found 1 operand
  --> prog.sq:4:5
   |
 4 |     cx a0;
   |     ^^

error: expected `;` to end the statement, found `}`
  --> prog.sq:6:3
   |
 6 |   }
   |   ^
"
    );
}

#[test]
fn golden_missing_import() {
    let root = "\
import nowhere;
entry module main(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    assert_eq!(
        multi_report(root, &[]),
        "\
error: cannot resolve import `nowhere`: no in-memory unit named `nowhere`
  --> root.sq:1:8
   |
 1 | import nowhere;
   |        ^^^^^^^
"
    );
}

#[test]
fn golden_import_cycle() {
    let root = "\
import a;
entry module main(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    let a = "import b;\nmodule fa(1 params, 0 ancilla) {\n  compute {\n    x p0;\n  }\n}\n";
    let b = "import a;\nmodule fb(1 params, 0 ancilla) {\n  compute {\n    x p0;\n  }\n}\n";
    assert_eq!(
        multi_report(root, &[("a", a), ("b", b)]),
        "\
error: import cycle: a.sq → b.sq → a.sq
  --> b.sq:1:1
   |
 1 | import a;
   | ^^^^^^^^^ imports must form a DAG
"
    );
}

#[test]
fn golden_cross_file_duplicate_module() {
    // The conflict anchors on the root file (the one the user is
    // editing) and names the imported file that already owns the name.
    let root = "\
import util;
module inc(1 params, 0 ancilla) {
  compute {
    x p0;
  }
}
entry module main(0 params, 1 ancilla) {
  compute {
    call inc(a0);
  }
}
";
    let util = "module inc(1 params, 0 ancilla) {\n  compute {\n    x p0;\n  }\n}\n";
    assert_eq!(
        multi_report(root, &[("util", util)]),
        "\
error: module `inc` is already defined in util.sq
  --> root.sq:2:8
   |
 2 | module inc(1 params, 0 ancilla) {
   |        ^^^ module names are global across imported files
"
    );
}

#[test]
fn golden_entry_in_imported_file() {
    let root = "\
import dep;
entry module main(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    let dep = "entry module other(0 params, 1 ancilla) {\n  compute {\n    x a0;\n  }\n}\n";
    assert_eq!(
        multi_report(root, &[("dep", dep)]),
        "\
error: imported file dep.sq declares `entry module other`
  --> dep.sq:1:1
   |
 1 | entry module other(0 params, 1 ancilla) {
   | ^^^^^ the entry module must live in the root file
"
    );
}

#[test]
fn golden_transitive_import_not_visible() {
    let root = "\
import mid;
entry module main(0 params, 1 ancilla) {
  compute {
    call deep(a0);
  }
}
";
    let mid =
        "import base;\nmodule shallow(1 params, 0 ancilla) {\n  compute {\n    call deep(p0);\n  }\n}\n";
    let base = "module deep(1 params, 0 ancilla) {\n  compute {\n    x p0;\n  }\n}\n";
    assert_eq!(
        multi_report(root, &[("mid", mid), ("base", base)]),
        "\
error: module `deep` is defined in base.sq, which root.sq does not import
  --> root.sq:4:10
   |
 4 |     call deep(a0);
   |          ^^^^ add `import base;` at the top of root.sq
"
    );
}

#[test]
fn golden_clbit_over_declared_bound() {
    // A written `N clbits` header is a declared bound; referencing a
    // higher clbit is an error at the clbit token. Dropping the header
    // re-enables on-demand growth (checked in the parser's own tests).
    let src = "\
entry module main(0 params, 1 ancilla, 1 clbits) {
  compute {
    x a0;
    measure a0 c3;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: classical bit `c3` is out of range: module `main` declares 1 clbit
  --> prog.sq:4:16
   |
 4 |     measure a0 c3;
   |                ^^ the `clbits` header is a declared bound; raise it, or drop the clause \
         to size classical storage on demand
"
    );
}

#[test]
fn golden_caret_alignment_with_tabs_and_wide_characters() {
    // Tab-indented source keeps its tabs in the caret pad (so the
    // carets line up in any tab rendering), and CJK identifiers count
    // as two columns wide.
    let src = "\
entry module main(1 params, 1 ancilla) {
  compute {
\t加法 a0;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: unexpected character `加`
  --> prog.sq:3:2
   |
 3 | \t加法 a0;
   | \t^^

error: unexpected character `法`
  --> prog.sq:3:3
   |
 3 | \t加法 a0;
   | \t  ^^

error: unknown gate `a0`
  --> prog.sq:3:5
   |
 3 | \t加法 a0;
   | \t     ^^
"
    );
}

#[test]
fn recovery_reports_each_problem_once() {
    // Panic-mode recovery resynchronizes on statement boundaries;
    // truncated or garbled input must not repeat the same diagnostic
    // for the same span.
    let sources = [
        // Truncated mid-module: EOF inside the compute block.
        "entry module main(0 params, 2 ancilla) {\n  compute {\n    cx a0",
        // Garbled statement soup.
        "entry module main(0 params, 2 ancilla) {\n  compute {\n    ;;; cx cx ;; a9 x\n  }\n}\n",
        // Header garbage followed by a well-formed module.
        "module (3 oops) {}\nentry module main(0 params, 1 ancilla) {\n  compute {\n    x a0;\n  }\n}\n",
    ];
    for src in sources {
        let diags = parse_program(src).expect_err("source must not parse");
        assert!(!diags.is_empty());
        let mut seen = std::collections::HashSet::new();
        for d in &diags {
            assert!(
                seen.insert((d.span.start, d.span.end, d.message.clone())),
                "duplicate diagnostic for {src:?}: {}",
                d.message
            );
        }
    }
}

#[test]
fn line_columns_survive_crlf_free_sources() {
    // The span machinery reports 1-based lines and columns.
    let src = "entry module m(0 params, 1 ancilla) {\n  compute {\n    swap a0;\n  }\n}\n";
    let diags = parse_program(src).unwrap_err();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line_col(src), (3, 5));
}

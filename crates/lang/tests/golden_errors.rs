//! Golden snapshots of rendered parse/resolution diagnostics.
//!
//! Each case asserts the *exact* rendered report — file:line:column
//! anchors, caret placement, and "did you mean" hints are all part of
//! the frontend's contract (the acceptance bar for the `.sq` frontend
//! is that errors carry usable spans). If an intentional wording
//! change breaks one of these, update the expected string alongside.

use square_lang::{parse_program, render};

fn report(source: &str) -> String {
    let diags = parse_program(source).expect_err("source must not parse");
    render(source, "prog.sq", &diags)
}

#[test]
fn golden_unknown_gate_with_suggestion() {
    let src = "\
entry module main(0 params, 2 ancilla) {
  compute {
    ccz a0 a1;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: unknown gate `ccz`
  --> prog.sq:3:5
   |
 3 |     ccz a0 a1;
   |     ^^^ did you mean `ccx`?
"
    );
}

#[test]
fn golden_call_arity_mismatch() {
    let src = "\
module f(2 params, 0 ancilla) {
  compute {
    cx p0 p1;
  }
}
entry module main(0 params, 3 ancilla) {
  compute {
    call f(a0, a1, a2);
  }
}
";
    assert_eq!(
        report(src),
        "\
error: call to `f` passes 3 arguments, but it declares 2 params
  --> prog.sq:8:5
   |
 8 |     call f(a0, a1, a2);
   |     ^^^^^^^^^^^^^^^^^^^
"
    );
}

#[test]
fn golden_unknown_module_with_suggestion() {
    let src = "\
module fun1(1 params, 0 ancilla) {
  compute {
    x p0;
  }
}
entry module main(0 params, 1 ancilla) {
  compute {
    call fun2(a0);
  }
}
";
    assert_eq!(
        report(src),
        "\
error: call to unknown module `fun2`
  --> prog.sq:8:10
   |
 8 |     call fun2(a0);
   |          ^^^^ did you mean `fun1`?
"
    );
}

#[test]
fn golden_duplicate_entry() {
    let src = "\
entry module a(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
entry module b(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: duplicate `entry` marker on module `b`
  --> prog.sq:6:1
   |
 6 | entry module b(0 params, 1 ancilla) {
   | ^^^^^ module `a` is already the entry
"
    );
}

#[test]
fn golden_operand_out_of_range() {
    let src = "\
entry module main(0 params, 2 ancilla) {
  compute {
    cx a0 a7;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: operand `a7` is out of range: module `main` declares 2 ancillas
  --> prog.sq:3:11
   |
 3 |     cx a0 a7;
   |           ^^
"
    );
}

#[test]
fn golden_missing_entry() {
    let src = "\
module lonely(0 params, 1 ancilla) {
  compute {
    x a0;
  }
}
";
    assert_eq!(
        report(src),
        "\
error: no module is marked `entry`
  --> prog.sq:1:8
   |
 1 | module lonely(0 params, 1 ancilla) {
   |        ^^^^^^ mark the top-level module: `entry module …`
"
    );
}

#[test]
fn golden_multi_error_report() {
    // One parse collects every problem: an unknown gate, a bad gate
    // arity, and a missing semicolon, each with its own anchor.
    let src = "\
entry module main(0 params, 3 ancilla) {
  compute {
    nott a0;
    cx a0;
    x a1
  }
}
";
    assert_eq!(
        report(src),
        "\
error: unknown gate `nott`
  --> prog.sq:3:5
   |
 3 |     nott a0;
   |     ^^^^ did you mean `not`?

error: `cx` takes 2 operands (control, target), found 1 operand
  --> prog.sq:4:5
   |
 4 |     cx a0;
   |     ^^

error: expected `;` to end the statement, found `}`
  --> prog.sq:6:3
   |
 6 |   }
   |   ^
"
    );
}

#[test]
fn line_columns_survive_crlf_free_sources() {
    // The span machinery reports 1-based lines and columns.
    let src = "entry module m(0 params, 1 ancilla) {\n  compute {\n    swap a0;\n  }\n}\n";
    let diags = parse_program(src).unwrap_err();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line_col(src), (3, 5));
}

//! The frontend's central guarantee: `parse(pretty(p)) == p`.
//!
//! Property-tested over the synthetic program generator (both the
//! free and the disciplined variant, the same generators the pipeline
//! fuzzer drives) and checked exhaustively over the benchmark catalog
//! (the NISQ set plus the cheap medium programs here; the full
//! 17-benchmark sweep including the large arithmetic cores runs in
//! `catalog_round_trips_full`, exercised by the `frontend` CI job).

use proptest::prelude::*;
use square_lang::{check_roundtrip, parse_program};
use square_qir::pretty::program_listing;
use square_workloads::synthetic::{synthesize, synthesize_disciplined, SynthParams};
use square_workloads::{build, Benchmark};

fn assert_round_trips(program: &square_qir::Program, what: &str) {
    if let Err(e) = check_roundtrip(program) {
        panic!("{what}: {e}\nlisting:\n{}", e.listing);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn synthetic_programs_round_trip(
        levels in 1usize..=4,
        max_callees in 1usize..=3,
        inputs_per_fn in 2usize..=6,
        max_ancilla in 1usize..=4,
        max_gates in 1usize..=14,
        seed in any::<u64>(),
    ) {
        let params = SynthParams {
            levels,
            max_callees,
            inputs_per_fn,
            max_ancilla,
            max_gates,
            seed,
        };
        let free = synthesize(&params).expect("synthetic program builds");
        assert_round_trips(&free, "free synthetic");
        let clean = synthesize_disciplined(&params).expect("disciplined program builds");
        assert_round_trips(&clean, "disciplined synthetic");
    }
}

/// The benchmarks cheap enough to round-trip in a debug test run.
const QUICK: [Benchmark; 10] = [
    Benchmark::Rd53,
    Benchmark::Sym6,
    Benchmark::TwoOf5,
    Benchmark::Adder4,
    Benchmark::JasmineS,
    Benchmark::ElsaS,
    Benchmark::BelleS,
    Benchmark::Jasmine,
    Benchmark::Elsa,
    Benchmark::Belle,
];

#[test]
fn catalog_round_trips_quick() {
    for bench in QUICK {
        let program = build(bench).expect("benchmark builds");
        assert_round_trips(&program, bench.name());
    }
}

/// Every benchmark of Table II, including the large arithmetic cores
/// (ADDER64, MUL64, MODEXP, SHA2, SALSA20). Run with `--ignored`
/// (release recommended); the `frontend` CI job does.
#[test]
#[ignore = "full catalog: run with --ignored (release)"]
fn catalog_round_trips_full() {
    for bench in Benchmark::ALL {
        let program = build(bench).expect("benchmark builds");
        assert_round_trips(&program, bench.name());
    }
}

#[test]
fn listing_is_a_fixed_point() {
    // pretty ∘ parse ∘ pretty == pretty: the canonical listing is
    // stable under a round trip, so dumped `.sq` files never churn.
    let program = build(Benchmark::Adder4).unwrap();
    let listing = program_listing(&program);
    let reparsed = parse_program(&listing).unwrap();
    assert_eq!(program_listing(&reparsed), listing);
}

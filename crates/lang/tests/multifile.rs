//! The multi-file frontend's central guarantee: splitting a program
//! across import files changes nothing observable. A program's
//! canonical listing, carved into per-module files joined by
//! `import` lines, must resolve to exactly the program that the
//! single-file concatenation (in merge order) parses to.

use std::collections::HashSet;

use proptest::prelude::*;
use square_lang::{check_roundtrip, parse_files, parse_program, MapLoader};
use square_qir::pretty::program_listing;
use square_qir::{ModuleId, Program, Stmt};
use square_workloads::synthetic::{synthesize_disciplined, SynthParams};

/// Per-module source chunks of a canonical listing, in program order.
fn module_chunks(listing: &str) -> Vec<String> {
    let mut chunks: Vec<String> = Vec::new();
    for line in listing.lines() {
        if line.starts_with("module ") || line.starts_with("entry module ") {
            chunks.push(String::new());
        }
        if let Some(chunk) = chunks.last_mut() {
            chunk.push_str(line);
            chunk.push('\n');
        }
    }
    chunks
}

fn push_callees(stmts: &[Stmt], out: &mut Vec<ModuleId>) {
    for stmt in stmts {
        if let Stmt::Call { callee, .. } = stmt {
            out.push(*callee);
        }
    }
}

/// Modules reachable from the entry, callees before callers (DFS
/// postorder) — so any contiguous split of this order only ever calls
/// into earlier files, and the import graph stays a DAG.
fn reachable_postorder(program: &Program) -> Vec<usize> {
    fn visit(program: &Program, id: ModuleId, seen: &mut Vec<bool>, order: &mut Vec<usize>) {
        if seen[id.index()] {
            return;
        }
        seen[id.index()] = true;
        let module = program.module(id);
        let mut callees = Vec::new();
        push_callees(module.compute(), &mut callees);
        push_callees(module.store(), &mut callees);
        if let Some(u) = module.custom_uncompute() {
            push_callees(u, &mut callees);
        }
        for callee in callees {
            visit(program, callee, seen, order);
        }
        order.push(id.index());
    }
    let mut seen = vec![false; program.len()];
    let mut order = Vec::new();
    visit(program, program.entry(), &mut seen, &mut order);
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn split_across_files_matches_the_flat_parse(
        levels in 1usize..=4,
        max_callees in 1usize..=3,
        inputs_per_fn in 2usize..=6,
        max_ancilla in 1usize..=4,
        max_gates in 2usize..=10,
        seed in any::<u64>(),
        k in 1usize..=4,
    ) {
        let params = SynthParams {
            levels,
            max_callees,
            inputs_per_fn,
            max_ancilla,
            max_gates,
            seed,
        };
        let program = synthesize_disciplined(&params).expect("synthetic program builds");
        let listing = program_listing(&program);
        let chunks = module_chunks(&listing);
        prop_assert_eq!(chunks.len(), program.len());

        let order = reachable_postorder(&program);
        let entry = program.entry().index();
        let reachable: HashSet<usize> = order.iter().copied().collect();
        // Satellites hold reachable non-entry modules; the entry (the
        // import pass requires it in the root) and anything uncalled
        // (imports are pruned to what the root reaches, the root
        // itself is kept whole) stay in the root file.
        let pool: Vec<usize> = order.iter().copied().filter(|&i| i != entry).collect();
        let per = pool.len().div_ceil(k).max(1);
        let files: Vec<&[usize]> = pool.chunks(per).collect();

        let mut loader = MapLoader::new();
        let mut root = String::new();
        for fi in 0..files.len() {
            root.push_str(&format!("import f{fi};\n"));
        }
        for (i, chunk) in chunks.iter().enumerate() {
            if !reachable.contains(&i) {
                root.push_str(chunk);
            }
        }
        root.push_str(&chunks[entry]);
        // Merge order is load order: the root's modules first, then
        // each imported unit depth-first in import order — here
        // f0, f1, … since every file only imports earlier ones.
        let mut flat = root
            .lines()
            .filter(|l| !l.starts_with("import "))
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        for (fi, idxs) in files.iter().enumerate() {
            let mut src = String::new();
            for j in 0..fi {
                src.push_str(&format!("import f{j};\n"));
            }
            for &i in idxs.iter() {
                src.push_str(&chunks[i]);
                flat.push_str(&chunks[i]);
            }
            loader.insert(format!("f{fi}"), src);
        }

        let (map, parsed) = parse_files("root.sq", &root, &loader);
        let multi = match parsed {
            Ok(p) => p,
            Err(diags) => panic!("split program failed to resolve:\n{}", map.render(&diags)),
        };
        let single = parse_program(&flat).expect("flat concatenation parses");
        prop_assert_eq!(&multi, &single);
        if let Err(e) = check_roundtrip(&multi) {
            panic!("merged program does not round-trip: {e}\nlisting:\n{}", e.listing);
        }
    }
}

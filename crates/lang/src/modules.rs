//! Multi-file module resolution: `import` items, file loading, and
//! cross-file name resolution with file-attributed diagnostics.
//!
//! A `.sq` file may begin with `import name;` items. Each one brings
//! every module of the unit `name` (for the filesystem loader, the
//! file `name.sq` resolved against the importing file's directory,
//! then the search path, then `lib/`) into the importing file's
//! scope. Resolution is a three-stage pass modeled on Q#'s
//! `qsc_frontend`:
//!
//! 1. **per-file parse** — each file parses independently with
//!    [`crate::parser::parse_source`]; its spans are then shifted onto
//!    a global offset axis owned by the [`SourceMap`], so one
//!    [`Diagnostic`] type serves every file and
//!    [`SourceMap::render`] attributes each error to its file.
//! 2. **import-graph build** — imports load depth-first in
//!    declaration order. A unit is identified by the loader's
//!    canonical key, so diamond imports load once, and a key already
//!    on the DFS stack is an import cycle, reported with the chain.
//! 3. **cross-file name resolution** — module names are global and
//!    must be unique across the loaded set; a file only *sees* its
//!    own modules plus those of units it directly imports (calling a
//!    module from a transitive import is an error with an "add
//!    `import …;`" hint); the `entry` module must live in the root
//!    file. Imported modules not reachable from any root-file module
//!    are pruned, so what a program imports — not what the stdlib
//!    happens to contain — determines the lowered [`Program`].
//!
//! The merged program then flows through the ordinary single-file
//! checks and lowering ([`crate::lower`]). An import-free root file
//! takes this path to the byte-identical result of
//! [`crate::parse_program`], and the lowered program's canonical
//! listing ([`square_qir::pretty::program_listing`]) is the flattened
//! single-file form — the lossless multi-file round trip.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use square_qir::Program;

use crate::ast::{SourceOperand, SourceProgram, SourceStmt};
use crate::diag::{render, suggest, Diagnostic, Span};
use crate::lower::lower;
use crate::parser::parse_source;

/// Identifies one loaded file within a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(usize);

/// One loaded file: display name, full source, and the global offset
/// of its first byte.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display name used in diagnostics (the path as resolved).
    pub name: String,
    /// Full source text.
    pub source: String,
    /// Global offset of this file's byte 0 (files occupy disjoint,
    /// ascending ranges separated by a one-byte gap).
    base: usize,
}

/// The set of files a multi-file parse loaded, on one global span
/// axis: every [`Diagnostic`] produced by [`parse_files`] carries a
/// global span that [`SourceMap::locate`] maps back to a file and a
/// file-local span.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    fn add(&mut self, name: String, source: String) -> FileId {
        let base = self
            .files
            .last()
            .map(|f| f.base + f.source.len() + 1)
            .unwrap_or(0);
        self.files.push(SourceFile { name, source, base });
        FileId(self.files.len() - 1)
    }

    /// The file registered under `id`.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0]
    }

    /// Number of loaded files (the root counts, so ≥ 1 after a parse).
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no file has been loaded yet.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Maps a global span back to the file containing it and the
    /// file-local span.
    pub fn locate(&self, span: Span) -> (FileId, Span) {
        let idx = self
            .files
            .partition_point(|f| f.base <= span.start)
            .saturating_sub(1);
        let f = &self.files[idx];
        let local = |o: usize| o.saturating_sub(f.base).min(f.source.len());
        (FileId(idx), Span::new(local(span.start), local(span.end)))
    }

    /// Renders diagnostics with per-file attribution: each one is
    /// located and rendered against its own file's source and name
    /// (the multi-file counterpart of [`crate::render`]).
    pub fn render(&self, diags: &[Diagnostic]) -> String {
        let mut out = String::new();
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            if self.files.is_empty() {
                out.push_str(&format!("error: {d}\n"));
                continue;
            }
            let (fid, local) = self.locate(d.span);
            let f = self.file(fid);
            let mut localized = d.clone();
            localized.span = local;
            out.push_str(&render(
                &f.source,
                &f.name,
                std::slice::from_ref(&localized),
            ));
        }
        out
    }
}

/// A file a [`ModuleLoader`] resolved for an `import name;` item.
#[derive(Debug, Clone)]
pub struct LoadedFile {
    /// Canonical identity of the file — two imports that resolve to
    /// the same key load one unit (and a key already being loaded is
    /// an import cycle). The filesystem loader canonicalizes paths;
    /// the in-memory loader uses the unit name itself.
    pub key: String,
    /// Display name for diagnostics (e.g. `lib/std.sq`).
    pub name: String,
    /// Full source text.
    pub source: String,
}

/// Resolves `import name;` items to source files.
pub trait ModuleLoader {
    /// Resolves the unit `name` as imported from the file identified
    /// by `importer_key` (the [`LoadedFile::key`] of the importing
    /// file; the root file's key is its path as given).
    ///
    /// # Errors
    ///
    /// A human-readable reason (e.g. the candidate paths tried); it is
    /// appended to the "cannot resolve import" diagnostic.
    fn load(&self, name: &str, importer_key: &str) -> Result<LoadedFile, String>;
}

/// Filesystem loader: `import name;` resolves to `name.sq` in the
/// importing file's directory first, then in each search-path
/// directory in order. [`SearchPathLoader::with_default_lib`] appends
/// the conventional `lib/` directory, which is where the shipped
/// standard library (`lib/std.sq`) lives.
#[derive(Debug, Clone, Default)]
pub struct SearchPathLoader {
    search: Vec<PathBuf>,
}

impl SearchPathLoader {
    /// A loader over the given search directories (tried in order,
    /// after the importing file's own directory).
    pub fn new(search: Vec<PathBuf>) -> SearchPathLoader {
        SearchPathLoader { search }
    }

    /// Like [`SearchPathLoader::new`], with `lib/` (relative to the
    /// working directory) appended as the final fallback.
    pub fn with_default_lib(mut search: Vec<PathBuf>) -> SearchPathLoader {
        search.push(PathBuf::from("lib"));
        SearchPathLoader { search }
    }
}

impl ModuleLoader for SearchPathLoader {
    fn load(&self, name: &str, importer_key: &str) -> Result<LoadedFile, String> {
        let file_name = format!("{name}.sq");
        let importer_dir = Path::new(importer_key)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf);
        let mut tried = Vec::new();
        for dir in importer_dir.into_iter().chain(self.search.iter().cloned()) {
            let path = dir.join(&file_name);
            match std::fs::read_to_string(&path) {
                Ok(source) => {
                    let key = std::fs::canonicalize(&path)
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|_| path.display().to_string());
                    return Ok(LoadedFile {
                        key,
                        name: path.display().to_string(),
                        source,
                    });
                }
                Err(_) => tried.push(format!("`{}`", path.display())),
            }
        }
        if tried.is_empty() {
            Err(format!("no search directories to look up `{file_name}` in"))
        } else {
            Err(format!("no file at {}", tried.join(", ")))
        }
    }
}

/// In-memory loader mapping unit names directly to source text — the
/// loader behind the multi-file property tests and the fuzzer's
/// stdlib-composition mode, where no filesystem is involved.
#[derive(Debug, Clone, Default)]
pub struct MapLoader {
    files: BTreeMap<String, String>,
}

impl MapLoader {
    /// An empty loader.
    pub fn new() -> MapLoader {
        MapLoader::default()
    }

    /// Registers `source` under the unit name `name` (imported as
    /// `import name;`), replacing any previous registration.
    pub fn insert(&mut self, name: impl Into<String>, source: impl Into<String>) {
        self.files.insert(name.into(), source.into());
    }
}

impl ModuleLoader for MapLoader {
    fn load(&self, name: &str, _importer_key: &str) -> Result<LoadedFile, String> {
        match self.files.get(name) {
            Some(source) => Ok(LoadedFile {
                key: name.to_string(),
                name: format!("{name}.sq"),
                source: source.clone(),
            }),
            None => Err(format!("no in-memory unit named `{name}`")),
        }
    }
}

/// One loaded unit: a parsed file (spans already global) plus its
/// resolved direct imports.
struct Unit {
    file: FileId,
    key: String,
    /// The name this unit is imported as (`std` for `lib/std.sq`);
    /// used in "add `import …;`" hints.
    unit_name: String,
    ast: SourceProgram,
    /// Unit index per `import` item, `None` where loading failed.
    deps: Vec<Option<usize>>,
}

/// Parses, resolves, and lowers a multi-file `.sq` program rooted at
/// `root_name`/`root_source`, loading `import`ed units through
/// `loader`. Returns the [`SourceMap`] of every file it loaded (for
/// file-attributed rendering via [`SourceMap::render`]) alongside the
/// result. For an import-free root this is exactly
/// [`crate::parse_program`].
///
/// # Errors
///
/// All diagnostics found — parse errors from any file, unresolvable
/// or cyclic imports, cross-file duplicate modules, an `entry` in an
/// imported file, calls to modules of units not directly imported —
/// each with a global span the returned map locates.
pub fn parse_files(
    root_name: &str,
    root_source: &str,
    loader: &dyn ModuleLoader,
) -> (SourceMap, Result<Program, Vec<Diagnostic>>) {
    let mut map = SourceMap::default();
    let result = parse_files_inner(root_name, root_source, loader, &mut map);
    (map, result)
}

fn parse_files_inner(
    root_name: &str,
    root_source: &str,
    loader: &dyn ModuleLoader,
    map: &mut SourceMap,
) -> Result<Program, Vec<Diagnostic>> {
    let mut diags = Vec::new();

    // Stage 1+2: per-file parse and depth-first import loading.
    let root_id = map.add(root_name.to_string(), root_source.to_string());
    let (root_ast, parse_diags) = parse_source(root_source);
    diags.extend(parse_diags); // root base is 0: spans are already global
    let root_stem = Path::new(root_name)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| root_name.to_string());
    let mut units = vec![Unit {
        file: root_id,
        key: root_name.to_string(),
        unit_name: root_stem,
        deps: vec![None; root_ast.imports.len()],
        ast: root_ast,
    }];
    let mut by_key: HashMap<String, usize> = HashMap::new();
    by_key.insert(root_name.to_string(), 0);
    let mut stack = vec![(root_name.to_string(), root_name.to_string())];
    load_imports(
        0,
        loader,
        map,
        &mut units,
        &mut by_key,
        &mut stack,
        &mut diags,
    );
    if !diags.is_empty() {
        return Err(diags);
    }

    // Stage 3: cross-file structural checks.
    // The entry module must live in the root file.
    for unit in &units[1..] {
        let file = &map.file(unit.file).name;
        for m in &unit.ast.modules {
            if let Some(es) = m.entry_span {
                diags.push(
                    Diagnostic::new(
                        es,
                        format!("imported file {file} declares `entry module {}`", m.name),
                    )
                    .with_help("the entry module must live in the root file"),
                );
            }
        }
    }
    // Module names are global across the loaded set. Imported units
    // register first so a root-vs-import conflict anchors on the root
    // file — the one the user is editing.
    let mut first_def: HashMap<&str, usize> = HashMap::new();
    for ui in (1..units.len()).chain([0]) {
        let unit = &units[ui];
        for m in &unit.ast.modules {
            match first_def.get(m.name.as_str()) {
                Some(&fu) => {
                    let d = if fu == ui {
                        Diagnostic::new(m.name_span, format!("duplicate module name `{}`", m.name))
                    } else {
                        Diagnostic::new(
                            m.name_span,
                            format!(
                                "module `{}` is already defined in {}",
                                m.name,
                                map.file(units[fu].file).name
                            ),
                        )
                        .with_help("module names are global across imported files")
                    };
                    diags.push(d);
                }
                None => {
                    first_def.insert(m.name.as_str(), ui);
                }
            }
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }

    // Global module index: root-file modules first, then imported
    // units in depth-first load order.
    let mut offset = Vec::with_capacity(units.len());
    let mut total = 0usize;
    for unit in &units {
        offset.push(total);
        total += unit.ast.modules.len();
    }
    let mut gid_of: HashMap<&str, usize> = HashMap::new();
    for (ui, unit) in units.iter().enumerate() {
        for (mi, m) in unit.ast.modules.iter().enumerate() {
            gid_of.insert(m.name.as_str(), offset[ui] + mi);
        }
    }
    let owner_of =
        |gid: usize| -> usize { offset.partition_point(|&o| o <= gid).saturating_sub(1) };

    // A file sees its own modules plus those of units it directly
    // imports — calls elsewhere diagnose with an `import` hint.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (ui, unit) in units.iter().enumerate() {
        let file = &map.file(unit.file).name;
        let mut visible: Vec<usize> = (offset[ui]..offset[ui] + unit.ast.modules.len()).collect();
        for &dep in unit.deps.iter().flatten() {
            visible.extend(offset[dep]..offset[dep] + units[dep].ast.modules.len());
        }
        let visible_names = || {
            visible
                .iter()
                .map(|&g| *gid_of.iter().find(|&(_, &v)| v == g).expect("gid").0)
        };
        for (mi, m) in unit.ast.modules.iter().enumerate() {
            let g = offset[ui] + mi;
            for stmt in m
                .compute
                .iter()
                .chain(&m.store)
                .chain(m.uncompute.iter().flatten())
            {
                let SourceStmt::Call {
                    callee,
                    callee_span,
                    ..
                } = stmt
                else {
                    continue;
                };
                match gid_of.get(callee.as_str()) {
                    Some(&target) if visible.contains(&target) => edges[g].push(target),
                    Some(&target) => {
                        let du = owner_of(target);
                        diags.push(
                            Diagnostic::new(
                                *callee_span,
                                format!(
                                    "module `{callee}` is defined in {}, which {file} does \
                                     not import",
                                    map.file(units[du].file).name
                                ),
                            )
                            .with_help(format!(
                                "add `import {};` at the top of {file}",
                                units[du].unit_name
                            )),
                        );
                    }
                    None => {
                        let mut d = Diagnostic::new(
                            *callee_span,
                            format!("call to unknown module `{callee}`"),
                        );
                        if let Some(s) = suggest(callee, visible_names()) {
                            d = d.with_help(format!("did you mean `{s}`?"));
                        }
                        diags.push(d);
                    }
                }
            }
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }

    // Prune imported modules unreachable from the root file: every
    // root-file module is a root (the canonical listing keeps them
    // all), imported modules survive only if some kept module calls
    // them.
    let nroot = units[0].ast.modules.len();
    let mut keep = vec![false; total];
    let mut queue: Vec<usize> = (0..nroot).collect();
    for &g in &queue {
        keep[g] = true;
    }
    while let Some(g) = queue.pop() {
        for &t in &edges[g] {
            if !keep[t] {
                keep[t] = true;
                queue.push(t);
            }
        }
    }

    // Merge (kept modules in global-index order) and reuse the
    // single-file resolution + lowering pass unchanged.
    let mut merged = SourceProgram::default();
    for (ui, unit) in units.iter().enumerate() {
        for (mi, m) in unit.ast.modules.iter().enumerate() {
            if keep[offset[ui] + mi] {
                merged.modules.push(m.clone());
            }
        }
    }
    lower(&merged)
}

#[allow(clippy::too_many_arguments)]
fn load_imports(
    u: usize,
    loader: &dyn ModuleLoader,
    map: &mut SourceMap,
    units: &mut Vec<Unit>,
    by_key: &mut HashMap<String, usize>,
    stack: &mut Vec<(String, String)>, // (canonical key, display name)
    diags: &mut Vec<Diagnostic>,
) {
    let imports = units[u].ast.imports.clone();
    let importer_key = units[u].key.clone();
    for (i, imp) in imports.iter().enumerate() {
        let loaded = match loader.load(&imp.name, &importer_key) {
            Ok(lf) => lf,
            Err(reason) => {
                diags.push(Diagnostic::new(
                    imp.name_span,
                    format!("cannot resolve import `{}`: {reason}", imp.name),
                ));
                continue;
            }
        };
        if let Some(pos) = stack.iter().position(|(k, _)| *k == loaded.key) {
            let mut chain: Vec<&str> = stack[pos..].iter().map(|(_, n)| n.as_str()).collect();
            chain.push(&loaded.name);
            diags.push(
                Diagnostic::new(imp.span, format!("import cycle: {}", chain.join(" → ")))
                    .with_help("imports must form a DAG"),
            );
            continue;
        }
        if let Some(&idx) = by_key.get(&loaded.key) {
            units[u].deps[i] = Some(idx); // diamond: already loaded once
            continue;
        }
        let fid = map.add(loaded.name.clone(), loaded.source);
        let base = map.file(fid).base;
        let (mut ast, parse_diags) = parse_source(&map.file(fid).source);
        shift_program(&mut ast, base);
        diags.extend(parse_diags.into_iter().map(|mut d| {
            d.span = Span::new(d.span.start + base, d.span.end + base);
            d
        }));
        let idx = units.len();
        by_key.insert(loaded.key.clone(), idx);
        units.push(Unit {
            file: fid,
            key: loaded.key.clone(),
            unit_name: imp.name.clone(),
            deps: vec![None; ast.imports.len()],
            ast,
        });
        units[u].deps[i] = Some(idx);
        stack.push((loaded.key, loaded.name));
        load_imports(idx, loader, map, units, by_key, stack, diags);
        stack.pop();
    }
}

/// Shifts every span in a freshly parsed file onto the global axis.
fn shift_program(ast: &mut SourceProgram, base: usize) {
    if base == 0 {
        return;
    }
    let sh = |s: Span| Span::new(s.start + base, s.end + base);
    for imp in &mut ast.imports {
        imp.name_span = sh(imp.name_span);
        imp.span = sh(imp.span);
    }
    for m in &mut ast.modules {
        m.name_span = sh(m.name_span);
        m.entry_span = m.entry_span.map(sh);
        m.clbits_span = m.clbits_span.map(sh);
        for stmt in m
            .compute
            .iter_mut()
            .chain(m.store.iter_mut())
            .chain(m.uncompute.iter_mut().flatten())
        {
            match stmt {
                SourceStmt::Gate { gate, span } => {
                    *gate = gate.map(|so| SourceOperand {
                        op: so.op,
                        span: sh(so.span),
                    });
                    *span = sh(*span);
                }
                SourceStmt::Call {
                    callee_span,
                    args,
                    span,
                    ..
                } => {
                    *callee_span = sh(*callee_span);
                    for a in args {
                        a.span = sh(a.span);
                    }
                    *span = sh(*span);
                }
                SourceStmt::Measure {
                    qubit,
                    clbit_span,
                    span,
                    ..
                } => {
                    qubit.span = sh(qubit.span);
                    *clbit_span = sh(*clbit_span);
                    *span = sh(*span);
                }
                SourceStmt::CondGate {
                    clbit_span,
                    gate,
                    span,
                    ..
                } => {
                    *clbit_span = sh(*clbit_span);
                    *gate = gate.map(|so| SourceOperand {
                        op: so.op,
                        span: sh(so.span),
                    });
                    *span = sh(*span);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "module inc(1 params, 0 ancilla) { compute { x p0; } }
module helper(1 params, 0 ancilla) { compute { x p0; } }
";

    fn loader() -> MapLoader {
        let mut l = MapLoader::new();
        l.insert("util", LIB);
        l
    }

    #[test]
    fn import_free_root_matches_parse_program() {
        let src = "entry module main(0 params, 1 ancilla) { compute { x a0; } }";
        let (map, got) = parse_files("main.sq", src, &MapLoader::new());
        assert_eq!(map.len(), 1);
        assert_eq!(got, crate::parse_program(src));
    }

    #[test]
    fn imported_modules_resolve_and_unused_ones_prune() {
        let src = "import util;
entry module main(0 params, 1 ancilla) { compute { call inc(a0); } }";
        let (map, got) = parse_files("main.sq", src, &loader());
        assert_eq!(map.len(), 2);
        let p = got.expect("resolves");
        // `helper` is never called: pruned. `inc` + `main` remain.
        assert_eq!(p.len(), 2);
        assert_eq!(p.module(p.entry()).name(), "main");
        // The flattened canonical listing is the lossless round trip.
        crate::check_roundtrip(&p).unwrap();
    }

    #[test]
    fn missing_import_diagnoses_with_loader_reason() {
        let src = "import ghost;
entry module main(0 params, 1 ancilla) { compute { x a0; } }";
        let (map, got) = parse_files("main.sq", src, &loader());
        let diags = got.unwrap_err();
        assert!(
            diags[0].message.contains("cannot resolve import `ghost`"),
            "{diags:?}"
        );
        let rendered = map.render(&diags);
        assert!(rendered.contains("--> main.sq:1:8"), "{rendered}");
    }

    #[test]
    fn import_cycles_report_the_chain() {
        let mut l = MapLoader::new();
        l.insert(
            "a",
            "import b;\nmodule am(1 params, 0 ancilla) { compute { x p0; } }",
        );
        l.insert(
            "b",
            "import a;\nmodule bm(1 params, 0 ancilla) { compute { x p0; } }",
        );
        let src = "import a;
entry module main(0 params, 1 ancilla) { compute { call am(a0); } }";
        let (_, got) = parse_files("main.sq", src, &l);
        let diags = got.unwrap_err();
        assert!(
            diags[0]
                .message
                .contains("import cycle: a.sq → b.sq → a.sq"),
            "{diags:?}"
        );
    }

    #[test]
    fn diamond_imports_load_once() {
        let mut l = MapLoader::new();
        l.insert(
            "left",
            "import base;\nmodule lm(1 params, 0 ancilla) { compute { call bm(p0); } }",
        );
        l.insert(
            "right",
            "import base;\nmodule rm(1 params, 0 ancilla) { compute { call bm(p0); } }",
        );
        l.insert(
            "base",
            "module bm(1 params, 0 ancilla) { compute { x p0; } }",
        );
        let src = "import left;
import right;
entry module main(0 params, 2 ancilla) { compute { call lm(a0); call rm(a1); } }";
        let (map, got) = parse_files("main.sq", src, &l);
        assert_eq!(map.len(), 4, "base loads once");
        let p = got.expect("diamond resolves");
        assert_eq!(p.len(), 4); // main, lm, rm, bm
    }

    #[test]
    fn cross_file_duplicate_module_names_the_other_file() {
        let src = "import util;
module inc(1 params, 0 ancilla) { compute { x p0; } }
entry module main(0 params, 1 ancilla) { compute { call inc(a0); } }";
        let (map, got) = parse_files("main.sq", src, &loader());
        let diags = got.unwrap_err();
        assert!(
            diags[0]
                .message
                .contains("`inc` is already defined in util.sq"),
            "{diags:?}"
        );
        let rendered = map.render(&diags);
        assert!(rendered.contains("--> main.sq:2:8"), "{rendered}");
    }

    #[test]
    fn entry_must_live_in_the_root_file() {
        let mut l = MapLoader::new();
        l.insert(
            "bad",
            "entry module main(0 params, 1 ancilla) { compute { x a0; } }",
        );
        let src = "import bad;
module shim(1 params, 0 ancilla) { compute { x p0; } }";
        let (_, got) = parse_files("main.sq", src, &l);
        let diags = got.unwrap_err();
        assert!(
            diags[0]
                .message
                .contains("imported file bad.sq declares `entry module main`"),
            "{diags:?}"
        );
    }

    #[test]
    fn transitive_imports_are_not_visible_without_an_import() {
        let mut l = MapLoader::new();
        l.insert(
            "mid",
            "import base;\nmodule mm(1 params, 0 ancilla) { compute { call bm(p0); } }",
        );
        l.insert(
            "base",
            "module bm(1 params, 0 ancilla) { compute { x p0; } }",
        );
        let src = "import mid;
entry module main(0 params, 1 ancilla) { compute { call bm(a0); } }";
        let (_, got) = parse_files("main.sq", src, &l);
        let diags = got.unwrap_err();
        assert!(
            diags[0]
                .message
                .contains("module `bm` is defined in base.sq, which main.sq does not import"),
            "{diags:?}"
        );
        assert_eq!(
            diags[0].help.as_deref(),
            Some("add `import base;` at the top of main.sq")
        );
    }

    #[test]
    fn parse_errors_in_imported_files_render_against_that_file() {
        let mut l = MapLoader::new();
        l.insert("broken", "module oops(1 params 0 ancilla) { }");
        let src = "import broken;
entry module main(0 params, 1 ancilla) { compute { x a0; } }";
        let (map, got) = parse_files("main.sq", src, &l);
        let diags = got.unwrap_err();
        let rendered = map.render(&diags);
        assert!(rendered.contains("--> broken.sq:1:"), "{rendered}");
    }
}

//! Recursive-descent parser for `.sq` source.
//!
//! The parser is *multi-error*: it never stops at the first problem.
//! Statement-level errors recover to the next `;` or `}`; module-level
//! errors skip a balanced brace group and resume at the next `module`
//! item. Every diagnostic carries a byte span (line/column via
//! [`crate::diag::line_col`]) and, where a misspelling is plausible, a
//! "did you mean" hint.

use square_qir::{Gate, Operand};

use crate::ast::{SourceImport, SourceModule, SourceOperand, SourceProgram, SourceStmt};
use crate::diag::{suggest, Diagnostic, Span};
use crate::lexer::{lex, Token, TokenKind};

/// Canonical gate mnemonics, in suggestion order.
pub const GATE_MNEMONICS: [&str; 5] = ["x", "cx", "ccx", "swap", "mcx"];

/// Accepted alias mnemonics (also valid "did you mean" suggestions,
/// since the parser accepts them).
pub const GATE_ALIASES: [&str; 3] = ["not", "cnot", "toffoli"];

/// Parses `.sq` source into the spanned surface AST, collecting every
/// diagnostic instead of stopping at the first. The returned AST
/// contains whatever parsed cleanly (useful for tooling); callers that
/// need a valid program must check the diagnostics are empty — or use
/// [`crate::parse_program`], which also resolves and lowers.
pub fn parse_source(source: &str) -> (SourceProgram, Vec<Diagnostic>) {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        source,
        tokens,
        pos: 0,
        diags: Vec::new(),
    };
    let program = parser.program();
    diags.append(&mut parser.diags);
    dedupe_by_span(&mut diags);
    (program, diags)
}

/// Keeps the first diagnostic anchored at each span and drops the
/// rest. Panic-mode recovery on a truncated or garbled input (an
/// unbalanced `}`, EOF inside a block) can report the same error site
/// once per enclosing production — e.g. "unclosed block" from the
/// statement loop *and* "expected `}` to close the module body" from
/// the module, both at the EOF token. One site, one error.
fn dedupe_by_span(diags: &mut Vec<Diagnostic>) {
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    diags.retain(|d| seen.insert((d.span.start, d.span.end)));
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_text(&self) -> &'s str {
        self.peek().text(self.source)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_word(&self, text: &str) -> bool {
        self.peek().kind == TokenKind::Word && self.peek_text() == text
    }

    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(span, message));
    }

    /// How the current token reads in a "found X" message.
    fn describe_found(&self, t: Token) -> String {
        match t.kind {
            TokenKind::Word => format!("`{}`", t.text(self.source)),
            other => other.describe().to_string(),
        }
    }

    /// Consumes a token of `kind` or reports what was found instead.
    fn expect(&mut self, kind: TokenKind, context: &str) -> Option<Token> {
        let t = self.peek();
        if t.kind == kind {
            return Some(self.bump());
        }
        let found = self.describe_found(t);
        self.error(
            t.span,
            format!("expected {} {context}, found {found}", kind.describe()),
        );
        None
    }

    /// Consumes the exact keyword `word` or diagnoses.
    fn expect_keyword(&mut self, word: &str, context: &str) -> bool {
        if self.at_word(word) {
            self.bump();
            return true;
        }
        let t = self.peek();
        let found = self.describe_found(t);
        self.error(
            t.span,
            format!("expected keyword `{word}` {context}, found {found}"),
        );
        false
    }

    // -- grammar ----------------------------------------------------------

    fn program(&mut self) -> SourceProgram {
        let mut imports = Vec::new();
        let mut modules = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Word if self.at_word("import") => {
                    if let Some(imp) = self.import_item(!modules.is_empty()) {
                        imports.push(imp);
                    }
                }
                TokenKind::Word if self.at_word("module") || self.at_word("entry") => {
                    match self.module() {
                        Some(m) => modules.push(m),
                        None => self.recover_module(),
                    }
                }
                _ => {
                    let t = self.peek();
                    let found = self.describe_found(t);
                    let mut d = Diagnostic::new(
                        t.span,
                        format!("expected `import`, `module`, or `entry module`, found {found}"),
                    );
                    if t.kind == TokenKind::Word {
                        if let Some(s) = suggest(t.text(self.source), ["import", "module", "entry"])
                        {
                            d = d.with_help(format!("did you mean `{s}`?"));
                        }
                    }
                    self.diags.push(d);
                    self.recover_module();
                }
            }
        }
        SourceProgram { imports, modules }
    }

    /// `"import" name ";"` — canonical position is before the first
    /// module; later imports still parse (and resolve) but diagnose so
    /// the listing stays canonical.
    fn import_item(&mut self, after_modules: bool) -> Option<SourceImport> {
        let head = self.bump(); // `import`
        if after_modules {
            self.error(
                head.span,
                "`import` items must come before the first module",
            );
        }
        let name_tok = self.expect(TokenKind::Word, "as the imported unit name")?;
        let end = self.expect(TokenKind::Semi, "to end the import")?.span;
        Some(SourceImport {
            name: name_tok.text(self.source).to_string(),
            name_span: name_tok.span,
            span: head.span.to(end),
        })
    }

    /// `["entry"] "module" name "(" N "params" "," M "ancilla" ")"
    /// "{" block* "}"`. Returns `None` when the header is too broken
    /// to attach blocks to (the caller then recovers).
    fn module(&mut self) -> Option<SourceModule> {
        let entry_span = if self.at_word("entry") {
            Some(self.bump().span)
        } else {
            None
        };
        if !self.expect_keyword("module", "to start a module") {
            return None;
        }
        let name_tok = self.expect(TokenKind::Word, "as the module name")?;
        let name = name_tok.text(self.source).to_string();
        self.expect(TokenKind::LParen, "after the module name")?;
        let params = self.number("as the parameter count")?;
        self.expect_keyword("params", "after the parameter count");
        self.expect(TokenKind::Comma, "after `params`")?;
        let ancillas = self.number("as the ancilla count")?;
        self.expect_keyword("ancilla", "after the ancilla count");
        // Optional third clause: `, N clbits` (printed only for
        // modules that measure, so most headers omit it). A written
        // clause is a declared bound on the module's classical bits.
        let (clbits, clbits_span) = if self.peek().kind == TokenKind::Comma {
            self.bump();
            let count_span = self.peek().span;
            let n = self.number("as the clbit count")?;
            let clause_end = if self.at_word("clbits") {
                self.bump().span
            } else {
                self.expect_keyword("clbits", "after the clbit count");
                count_span
            };
            (n, Some(count_span.to(clause_end)))
        } else {
            (0, None)
        };
        self.expect(TokenKind::RParen, "to close the signature")?;
        self.expect(TokenKind::LBrace, "to open the module body")?;

        let mut module = SourceModule {
            name,
            name_span: name_tok.span,
            entry_span,
            params,
            ancillas,
            clbits,
            clbits_span,
            compute: Vec::new(),
            store: Vec::new(),
            uncompute: None,
        };
        // Blocks in canonical order, each at most once. Out-of-order
        // or repeated blocks parse (so their statements still get
        // checked) but diagnose.
        let mut seen: Vec<(&'static str, Span)> = Vec::new();
        while self.peek().kind == TokenKind::Word {
            let label_tok = self.peek();
            let label = match self.peek_text() {
                "compute" => "compute",
                "store" => "store",
                "uncompute" => "uncompute",
                other => {
                    let mut d = Diagnostic::new(
                        label_tok.span,
                        format!(
                            "unknown block `{other}` (expected `compute`, `store`, or `uncompute`)"
                        ),
                    );
                    if let Some(s) = suggest(other, ["compute", "store", "uncompute"]) {
                        d = d.with_help(format!("did you mean `{s}`?"));
                    }
                    self.diags.push(d);
                    self.bump();
                    // Skip its braced body, if any, then keep going.
                    if self.peek().kind == TokenKind::LBrace {
                        self.skip_balanced_braces();
                    }
                    continue;
                }
            };
            self.bump();
            let order = |l: &str| match l {
                "compute" => 0,
                "store" => 1,
                _ => 2,
            };
            if let Some((dup, _)) = seen.iter().find(|(l, _)| *l == label) {
                self.error(
                    label_tok.span,
                    format!("duplicate `{dup}` block in module `{}`", module.name),
                );
            } else if let Some((later, _)) =
                seen.iter().find(|(l, _)| order(l) > order(label)).copied()
            {
                self.error(
                    label_tok.span,
                    format!(
                        "`{label}` block must come before `{later}` \
                         (canonical order is compute, store, uncompute)"
                    ),
                );
            }
            seen.push((label, label_tok.span));
            let stmts = self.block();
            match label {
                "compute" => module.compute.extend(stmts),
                "store" => module.store.extend(stmts),
                _ => module.uncompute.get_or_insert_with(Vec::new).extend(stmts),
            }
        }
        self.expect(TokenKind::RBrace, "to close the module body");
        Some(module)
    }

    /// `"{" stmt* "}"` — the label has already been consumed.
    fn block(&mut self) -> Vec<SourceStmt> {
        let mut stmts = Vec::new();
        if self
            .expect(TokenKind::LBrace, "to open the block")
            .is_none()
        {
            return stmts;
        }
        loop {
            match self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => {
                    let span = self.peek().span;
                    self.error(span, "unclosed block: expected `}`");
                    break;
                }
                _ => match self.stmt() {
                    Some(s) => stmts.push(s),
                    None => self.recover_stmt(),
                },
            }
        }
        stmts
    }

    /// One `gate …;` or `call name(…);` statement.
    fn stmt(&mut self) -> Option<SourceStmt> {
        let head = self.peek();
        if head.kind != TokenKind::Word {
            self.error(
                head.span,
                format!(
                    "expected a gate or `call` statement, found {}",
                    head.kind.describe()
                ),
            );
            return None;
        }
        let word = head.text(self.source);
        let lower = word.to_ascii_lowercase();
        // Statement heads are case-insensitive throughout — `CALL`
        // reads as `call`, like `CNOT` reads as `cnot`.
        if lower == "call" {
            return self.call_stmt();
        }
        if lower == "measure" {
            return self.measure_stmt();
        }
        if lower == "cond" {
            return self.cond_stmt();
        }
        let Some(kind) = gate_kind(&lower) else {
            let mut d = Diagnostic::new(head.span, format!("unknown gate `{word}`"));
            let mut candidates: Vec<&str> = GATE_MNEMONICS.to_vec();
            candidates.extend(GATE_ALIASES);
            candidates.extend(["call", "measure", "cond"]);
            if let Some(s) = suggest(word, candidates) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            self.diags.push(d);
            return None;
        };
        self.bump();
        let gate = self.gate_tail(kind, lower.as_str(), head.span)?;
        let end = self.expect(TokenKind::Semi, "to end the statement")?.span;
        Some(SourceStmt::Gate {
            gate,
            span: head.span.to(end),
        })
    }

    /// Operands of a gate whose mnemonic was just consumed, built into
    /// the gate with arity checking. The `;` is left for the caller —
    /// an arity failure keeps the terminator for recovery to sync on
    /// (otherwise the next statement would be swallowed).
    fn gate_tail(
        &mut self,
        kind: GateKind,
        mnemonic: &str,
        head_span: Span,
    ) -> Option<Gate<SourceOperand>> {
        let mut operands = Vec::new();
        while self.peek().kind == TokenKind::Word {
            operands.push(self.operand()?);
        }
        self.build_gate(kind, mnemonic, head_span, operands)
    }

    /// `"measure" operand clbit ";"`
    fn measure_stmt(&mut self) -> Option<SourceStmt> {
        let head = self.bump(); // `measure`
        let qubit = self.operand()?;
        let (clbit, clbit_span) = self.clbit("as the measurement destination")?;
        let end = self.expect(TokenKind::Semi, "to end the statement")?.span;
        Some(SourceStmt::Measure {
            qubit,
            clbit,
            clbit_span,
            span: head.span.to(end),
        })
    }

    /// `"cond" clbit gate ";"`
    fn cond_stmt(&mut self) -> Option<SourceStmt> {
        let head = self.bump(); // `cond`
        let (clbit, clbit_span) = self.clbit("as the guard")?;
        let gate_tok = self.peek();
        if gate_tok.kind != TokenKind::Word {
            self.error(
                gate_tok.span,
                format!(
                    "expected a gate after the guard, found {}",
                    gate_tok.kind.describe()
                ),
            );
            return None;
        }
        let word = gate_tok.text(self.source);
        let mnemonic = word.to_ascii_lowercase();
        let Some(kind) = gate_kind(&mnemonic) else {
            let mut d = Diagnostic::new(gate_tok.span, format!("unknown gate `{word}`"));
            let mut candidates: Vec<&str> = GATE_MNEMONICS.to_vec();
            candidates.extend(GATE_ALIASES);
            if let Some(s) = suggest(word, candidates) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            self.diags.push(d);
            return None;
        };
        self.bump();
        let gate = self.gate_tail(kind, mnemonic.as_str(), gate_tok.span)?;
        let end = self.expect(TokenKind::Semi, "to end the statement")?.span;
        Some(SourceStmt::CondGate {
            clbit,
            clbit_span,
            gate,
            span: head.span.to(end),
        })
    }

    /// `c<digits>` — a module-local classical bit reference.
    fn clbit(&mut self, context: &str) -> Option<(usize, Span)> {
        let t = self.peek();
        let bad = |p: &mut Self| {
            let found = p.describe_found(t);
            p.error(
                t.span,
                format!("expected a classical bit like `c0` {context}, found {found}"),
            );
            None
        };
        if t.kind != TokenKind::Word {
            return bad(self);
        }
        let text = t.text(self.source);
        let parsed = text
            .strip_prefix('c')
            .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|d| d.parse::<usize>().ok());
        match parsed {
            Some(i) => {
                self.bump();
                Some((i, t.span))
            }
            None => bad(self),
        }
    }

    fn build_gate(
        &mut self,
        kind: GateKind,
        mnemonic: &str,
        span: Span,
        ops: Vec<SourceOperand>,
    ) -> Option<Gate<SourceOperand>> {
        let found = ops_len_phrase(ops.len());
        let arity_err = |p: &mut Self, expected: &str| {
            p.error(
                span,
                format!("`{mnemonic}` takes {expected}, found {found}"),
            );
            None
        };
        match kind {
            GateKind::X => match <[SourceOperand; 1]>::try_from(ops.as_slice()) {
                Ok([target]) => Some(Gate::X { target }),
                Err(_) => arity_err(self, "1 operand"),
            },
            GateKind::Cx => match <[SourceOperand; 2]>::try_from(ops.as_slice()) {
                Ok([control, target]) => Some(Gate::Cx { control, target }),
                Err(_) => arity_err(self, "2 operands (control, target)"),
            },
            GateKind::Ccx => match <[SourceOperand; 3]>::try_from(ops.as_slice()) {
                Ok([c0, c1, target]) => Some(Gate::Ccx { c0, c1, target }),
                Err(_) => arity_err(self, "3 operands (two controls, target)"),
            },
            GateKind::Swap => match <[SourceOperand; 2]>::try_from(ops.as_slice()) {
                Ok([a, b]) => Some(Gate::Swap { a, b }),
                Err(_) => arity_err(self, "2 operands"),
            },
            GateKind::Mcx => {
                let mut ops = ops;
                match ops.pop() {
                    Some(target) => Some(Gate::Mcx {
                        controls: ops,
                        target,
                    }),
                    None => arity_err(self, "at least 1 operand (controls…, target)"),
                }
            }
        }
    }

    /// `"call" name "(" [operand ("," operand)*] ")" ";"`
    fn call_stmt(&mut self) -> Option<SourceStmt> {
        let call_tok = self.bump(); // `call`
        let name_tok = self.expect(TokenKind::Word, "as the callee name")?;
        self.expect(TokenKind::LParen, "after the callee name")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.operand()?);
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(TokenKind::RParen, "to close the argument list")?;
        let end = self.expect(TokenKind::Semi, "to end the statement")?.span;
        Some(SourceStmt::Call {
            callee: name_tok.text(self.source).to_string(),
            callee_span: name_tok.span,
            args,
            span: call_tok.span.to(end),
        })
    }

    /// `p<digits>` or `a<digits>`.
    fn operand(&mut self) -> Option<SourceOperand> {
        let t = self.peek();
        if t.kind != TokenKind::Word {
            self.error(
                t.span,
                format!(
                    "expected an operand like `p0` or `a3`, found {}",
                    t.kind.describe()
                ),
            );
            return None;
        }
        let text = t.text(self.source);
        let parsed = text
            .strip_prefix('p')
            .map(|d| (true, d))
            .or_else(|| text.strip_prefix('a').map(|d| (false, d)))
            .filter(|(_, d)| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|(is_param, d)| Some((is_param, d.parse::<usize>().ok()?)));
        match parsed {
            Some((is_param, i)) => {
                self.bump();
                Some(SourceOperand {
                    op: if is_param {
                        Operand::Param(i)
                    } else {
                        Operand::Ancilla(i)
                    },
                    span: t.span,
                })
            }
            None => {
                self.error(
                    t.span,
                    format!("expected an operand like `p0` or `a3`, found `{text}`"),
                );
                None
            }
        }
    }

    /// A word of digits, as usize.
    fn number(&mut self, context: &str) -> Option<usize> {
        let t = self.expect(TokenKind::Word, context)?;
        let text = t.text(self.source);
        match text.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                self.error(
                    t.span,
                    format!("expected a number {context}, found `{text}`"),
                );
                None
            }
        }
    }

    // -- recovery ---------------------------------------------------------

    /// Skips to just after the next `;`, or to the next `}` / end of
    /// input (not consumed), whichever comes first.
    fn recover_stmt(&mut self) {
        loop {
            match self.peek().kind {
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace | TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips forward to the next top-level `module` / `entry` item,
    /// balancing braces on the way.
    fn recover_module(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Word
                    if depth == 0 && (self.at_word("module") || self.at_word("entry")) =>
                {
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes one balanced `{ … }` group (current token must be `{`).
    fn skip_balanced_braces(&mut self) {
        debug_assert_eq!(self.peek().kind, TokenKind::LBrace);
        let mut depth = 0usize;
        loop {
            match self.peek().kind {
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum GateKind {
    X,
    Cx,
    Ccx,
    Swap,
    Mcx,
}

/// Maps an already-lowercased statement head to its gate kind, if it
/// is one (aliases included).
fn gate_kind(lower: &str) -> Option<GateKind> {
    match lower {
        "x" | "not" => Some(GateKind::X),
        "cx" | "cnot" => Some(GateKind::Cx),
        "ccx" | "toffoli" => Some(GateKind::Ccx),
        "swap" => Some(GateKind::Swap),
        "mcx" => Some(GateKind::Mcx),
        _ => None,
    }
}

fn ops_len_phrase(n: usize) -> String {
    match n {
        1 => "1 operand".to_string(),
        n => format!("{n} operands"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_two_module_program() {
        let src = "\
module fun1(4 params, 1 ancilla) {
  compute {
    ccx p0 p1 p2;
    cx p2 a0;
  }
  store {
    cx a0 p3;
  }
}

entry module main(0 params, 4 ancilla) {
  compute {
    call fun1(a0, a1, a2, a3);
  }
}
";
        let (program, diags) = parse_source(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(program.modules.len(), 2);
        let fun1 = &program.modules[0];
        assert_eq!(fun1.name, "fun1");
        assert_eq!((fun1.params, fun1.ancillas), (4, 1));
        assert_eq!(fun1.compute.len(), 2);
        assert_eq!(fun1.store.len(), 1);
        assert!(fun1.uncompute.is_none());
        assert!(!fun1.is_entry());
        assert!(program.modules[1].is_entry());
        match &program.modules[1].compute[0] {
            SourceStmt::Call { callee, args, .. } => {
                assert_eq!(callee, "fun1");
                assert_eq!(args.len(), 4);
                assert_eq!(args[0].op, Operand::Ancilla(0));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn empty_uncompute_is_some_empty() {
        let src = "module m(1 params, 1 ancilla) { compute { cx p0 a0; } uncompute {} }";
        let (program, diags) = parse_source(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(program.modules[0].uncompute, Some(vec![]));
    }

    #[test]
    fn gate_aliases_and_case_are_accepted() {
        let src =
            "module m(3 params, 0 ancilla) { compute { NOT p0; CNOT p0 p1; Toffoli p0 p1 p2; } }";
        let (program, diags) = parse_source(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(program.modules[0].compute.len(), 3);
    }

    #[test]
    fn multiple_errors_are_all_reported() {
        let src = "\
module m(2 params, 1 ancilla) {
  compute {
    ccz p0 p1 a0;
    cx p0;
    call f(p0, p1)
  }
}
";
        let (_, diags) = parse_source(src);
        // Unknown gate, bad arity, missing semicolon: three errors from
        // one parse.
        assert!(diags.len() >= 3, "{diags:?}");
        assert!(diags[0].message.contains("unknown gate `ccz`"));
        assert_eq!(diags[0].help.as_deref(), Some("did you mean `ccx`?"));
        assert!(diags.iter().any(|d| d.message.contains("`cx` takes 2")));
    }

    #[test]
    fn recovery_reaches_the_next_module() {
        let src = "\
module broken(1 params oops
module fine(1 params, 0 ancilla) {
  compute { x p0; }
}
";
        let (program, diags) = parse_source(src);
        assert!(!diags.is_empty());
        assert!(program.modules.iter().any(|m| m.name == "fine"));
    }

    #[test]
    fn duplicate_and_out_of_order_blocks_diagnose() {
        let src = "module m(1 params, 0 ancilla) { store { } compute { x p0; } compute { } }";
        let (_, diags) = parse_source(src);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("must come before `store`")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("duplicate `compute`")));
    }

    #[test]
    fn measurement_statements_and_clbits_clause_parse() {
        let src = "\
entry module mbu(0 params, 1 ancilla, 2 clbits) {
  compute {
    x a0;
    measure a0 c1;
    cond c1 x a0;
  }
}
";
        let (program, diags) = parse_source(src);
        assert!(diags.is_empty(), "{diags:?}");
        let m = &program.modules[0];
        assert_eq!(m.clbits, 2);
        assert_eq!(m.compute.len(), 3);
        match &m.compute[1] {
            SourceStmt::Measure { qubit, clbit, .. } => {
                assert_eq!(qubit.op, Operand::Ancilla(0));
                assert_eq!(*clbit, 1);
            }
            other => panic!("expected measure, got {other:?}"),
        }
        match &m.compute[2] {
            SourceStmt::CondGate { clbit, gate, .. } => {
                assert_eq!(*clbit, 1);
                assert!(matches!(gate, Gate::X { .. }));
            }
            other => panic!("expected cond, got {other:?}"),
        }
    }

    #[test]
    fn malformed_classical_statements_diagnose() {
        let src = "module m(0 params, 1 ancilla) { compute { measure a0 q1; cond x a0; } }";
        let (_, diags) = parse_source(src);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("expected a classical bit like `c0`")),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 2, "both statements diagnose: {diags:?}");
    }

    #[test]
    fn mcx_with_many_controls_parses() {
        let src = "module m(5 params, 0 ancilla) { compute { mcx p0 p1 p2 p3 p4; } }";
        let (program, diags) = parse_source(src);
        assert!(diags.is_empty(), "{diags:?}");
        match &program.modules[0].compute[0] {
            SourceStmt::Gate {
                gate: Gate::Mcx { controls, target },
                ..
            } => {
                assert_eq!(controls.len(), 4);
                assert_eq!(target.op, Operand::Param(4));
            }
            other => panic!("expected mcx, got {other:?}"),
        }
    }
}

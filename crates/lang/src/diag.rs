//! Spanned diagnostics with line/column carets and suggestions.
//!
//! Every frontend error carries a byte [`Span`] into the source text;
//! [`render`] turns a batch of diagnostics into the familiar
//! `error: … --> file:line:col` display with a caret line under the
//! offending token. [`suggest`] powers the "did you mean" hints for
//! misspelled gate mnemonics and module names.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte of the spanned region.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// One frontend error: a message anchored to a [`Span`], with an
/// optional `help` hint rendered next to the caret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Byte span of the offending region.
    pub span: Span,
    /// What went wrong.
    pub message: String,
    /// Optional hint (e.g. a "did you mean" suggestion).
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic without a help hint.
    pub fn new(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// The 1-based (line, column) of the diagnostic's span start.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        line_col(source, self.span.start)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(h) = &self.help {
            write!(f, " ({h})")?;
        }
        Ok(())
    }
}

/// The 1-based (line, column) of byte `offset` in `source`. Columns
/// count characters, not bytes, so carets line up for non-ASCII text.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let col = source[line_start..offset].chars().count() + 1;
    (line, col)
}

/// Renders diagnostics as compiler-style error reports:
///
/// ```text
/// error: unknown gate `ccz`
///   --> prog.sq:4:5
///    |
///  4 |     ccz p0 p1 a0;
///    |     ^^^ did you mean `ccx`?
/// ```
pub fn render(source: &str, file: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let (line, col) = line_col(source, d.span.start);
        out.push_str(&format!("error: {}\n", d.message));
        out.push_str(&format!("  --> {file}:{line}:{col}\n"));
        let line_start = source[..d.span.start.min(source.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let line_text = source[line_start..].lines().next().unwrap_or("");
        let gutter = format!("{line}");
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {line_text}\n"));
        // Caret width: the spanned text's *display* columns on this
        // line (at least 1) — East Asian wide characters occupy two.
        let span_on_line = d.span.end.min(line_start + line_text.len());
        let width: usize = source[d.span.start.min(span_on_line)..span_on_line]
            .chars()
            .map(display_width)
            .sum::<usize>()
            .max(1);
        // Pad with the line's own tabs so the caret stays aligned
        // under the span regardless of how the terminal expands them;
        // every other character contributes its display width in
        // spaces.
        let caret_pad: String = source[line_start..d.span.start.min(source.len())]
            .chars()
            .flat_map(|c| {
                let (fill, n) = if c == '\t' {
                    ('\t', 1)
                } else {
                    (' ', display_width(c))
                };
                std::iter::repeat_n(fill, n)
            })
            .collect();
        out.push_str(&format!(" {pad} | {caret_pad}{}", "^".repeat(width)));
        if let Some(h) = &d.help {
            out.push_str(&format!(" {h}"));
        }
        out.push('\n');
    }
    out
}

/// Terminal display width of one character: 2 for East Asian wide and
/// fullwidth ranges, 0 for combining marks and zero-width joiners, 1
/// otherwise. A compact approximation of `wcwidth` covering the
/// scripts that plausibly appear in `.sq` comments and module names;
/// used so caret lines stay aligned under non-ASCII source.
fn display_width(c: char) -> usize {
    let cp = c as u32;
    let wide = matches!(
        cp,
        0x1100..=0x115F          // Hangul Jamo
        | 0x2E80..=0x303E        // CJK radicals, Kangxi, CJK punctuation
        | 0x3041..=0x33FF        // Hiragana .. CJK compatibility
        | 0x3400..=0x4DBF        // CJK extension A
        | 0x4E00..=0x9FFF        // CJK unified ideographs
        | 0xA000..=0xA4CF        // Yi
        | 0xAC00..=0xD7A3        // Hangul syllables
        | 0xF900..=0xFAFF        // CJK compatibility ideographs
        | 0xFE30..=0xFE4F        // CJK compatibility forms
        | 0xFF00..=0xFF60        // Fullwidth forms
        | 0xFFE0..=0xFFE6        // Fullwidth signs
        | 0x1F300..=0x1F64F      // Emoji (pictographs, emoticons)
        | 0x1F900..=0x1F9FF      // Supplemental symbols
        | 0x20000..=0x3FFFD      // CJK extensions B+
    );
    let zero = matches!(
        cp,
        0x0300..=0x036F          // combining diacritics
        | 0x200B..=0x200D        // zero-width space/joiners
        | 0xFE00..=0xFE0F        // variation selectors
    );
    if wide {
        2
    } else if zero {
        0
    } else {
        1
    }
}

/// Returns the candidate closest to `name` (case-insensitively) when
/// it is close enough to be a plausible typo — the "did you mean"
/// heuristic. The edit-distance budget scales with the name's length
/// so short mnemonics don't suggest wildly.
pub fn suggest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let lower = name.to_ascii_lowercase();
    let budget = 1 + lower.chars().count() / 4;
    candidates
        .into_iter()
        .map(|c| (edit_distance(&lower, &c.to_ascii_lowercase()), c))
        // An exact match is not a typo — but a case-only variant
        // (distance 0 after folding, different spelling) is worth
        // suggesting when the caller matched case-sensitively.
        .filter(|&(d, c)| c != name && d <= budget)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Levenshtein distance over characters.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 8), (3, 3));
    }

    #[test]
    fn render_carets_under_the_span() {
        let src = "module f(1 params, 0 ancilla) {\n  compute {\n    ccz p0;\n  }\n}\n";
        let at = src.find("ccz").unwrap();
        let d = Diagnostic::new(Span::new(at, at + 3), "unknown gate `ccz`")
            .with_help("did you mean `ccx`?");
        let rendered = render(src, "prog.sq", &[d]);
        assert!(rendered.contains("error: unknown gate `ccz`"));
        assert!(rendered.contains("--> prog.sq:3:5"));
        assert!(rendered.contains("^^^ did you mean `ccx`?"));
    }

    #[test]
    fn suggestions_respect_the_distance_budget() {
        assert_eq!(suggest("ccz", ["x", "cx", "ccx", "swap"]), Some("ccx"));
        assert_eq!(suggest("fun2", ["fun1", "main"]), Some("fun1"));
        assert_eq!(suggest("zzzzz", ["x", "cx", "ccx"]), None);
        // An exact match is not a typo; no suggestion.
        assert_eq!(suggest("ccx", ["ccx"]), None);
        // A case-only variant *is* suggested (the caller matched
        // case-sensitively, so the user needs the canonical spelling).
        assert_eq!(suggest("COMPUTE", ["compute", "store"]), Some("compute"));
    }

    #[test]
    fn render_keeps_carets_aligned_under_tabs() {
        let src = "module m(1 params, 0 ancilla) {\n\tcompute {\n\t\tzz p0;\n\t}\n}\n";
        let at = src.find("zz").unwrap();
        let d = Diagnostic::new(Span::new(at, at + 2), "unknown gate `zz`");
        let rendered = render(src, "prog.sq", &[d]);
        // The caret line reuses the source line's tabs, so the carets
        // land under the span however wide the terminal draws a tab.
        assert!(
            rendered.contains(" 3 | \t\tzz p0;\n   | \t\t^^"),
            "{rendered}"
        );
    }

    #[test]
    fn render_accounts_for_wide_characters() {
        // `加法` is two East Asian wide characters (two columns each),
        // so the caret pad must emit four spaces for them — counting
        // chars would leave the carets two columns short.
        let src = "\t加法 zz p0;\n";
        let at = src.find("zz").unwrap();
        let d = Diagnostic::new(Span::new(at, at + 2), "unknown gate `zz`");
        let rendered = render(src, "prog.sq", &[d]);
        assert!(
            rendered.contains(" 1 | \t加法 zz p0;\n   | \t     ^^"),
            "{rendered}"
        );
    }

    #[test]
    fn display_width_classifies_wide_and_zero_width() {
        assert_eq!(display_width('a'), 1);
        assert_eq!(display_width('加'), 2);
        assert_eq!(display_width('ﬀ'), 1); // narrow ligature
        assert_eq!(display_width('\u{200B}'), 0); // zero-width space
        assert_eq!(display_width('\u{0301}'), 0); // combining acute
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }
}

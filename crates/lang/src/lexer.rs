//! Hand-rolled lexer for `.sq` source.
//!
//! The token set is deliberately tiny: *words* (identifiers, numbers,
//! keywords, gate mnemonics and operands are all one lexical class —
//! module names like `2of5` may start with a digit, so there is no
//! separate number token) plus six punctuation marks. `//` and `#`
//! start line comments. Unknown characters produce a diagnostic and
//! are skipped, so lexing never aborts the parse.

use crate::diag::{Diagnostic, Span};

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of `[A-Za-z0-9_]` characters: identifier, number,
    /// keyword, mnemonic, or operand — the parser decides from context.
    Word,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// Human-readable name for "expected X, found Y" messages.
    pub fn describe(self) -> &'static str {
        match self {
            TokenKind::Word => "a word",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Eof => "end of input",
        }
    }
}

/// One token: a kind plus its byte span (text is sliced from the
/// source on demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.span.start..self.span.end]
    }
}

/// Tokenizes `source`. Returns the token stream (always terminated by
/// an [`TokenKind::Eof`] token) and any lexical diagnostics (unknown
/// characters, which are skipped).
pub fn lex(source: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => i = line_end(bytes, i),
            b'/' if bytes.get(i + 1) == Some(&b'/') => i = line_end(bytes, i),
            b'{' | b'}' | b'(' | b')' | b',' | b';' => {
                let kind = match b {
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b',' => TokenKind::Comma,
                    _ => TokenKind::Semi,
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word,
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Skip one whole character (not byte) so multi-byte
                // UTF-8 garbage produces one diagnostic, not several.
                let ch = source[i..].chars().next().unwrap_or('\u{fffd}');
                let end = i + ch.len_utf8();
                diags.push(Diagnostic::new(
                    Span::new(i, end),
                    format!("unexpected character `{ch}`"),
                ));
                i = end;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    (tokens, diags)
}

fn line_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).0.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_punctuation() {
        let src = "module 2of5(5 params, 3 ancilla) { compute { x a0; } }";
        let (tokens, diags) = lex(src);
        assert!(diags.is_empty());
        assert_eq!(tokens[0].text(src), "module");
        assert_eq!(tokens[1].text(src), "2of5");
        assert_eq!(tokens[2].kind, TokenKind::LParen);
        assert_eq!(*kinds(src).last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// header\nx a0; # trailing\ncx a0 a1;";
        let (tokens, diags) = lex(src);
        assert!(diags.is_empty());
        let words: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(words, ["x", "a0", "cx", "a0", "a1"]);
    }

    #[test]
    fn unknown_characters_diagnose_and_continue() {
        let (tokens, diags) = lex("x a0; € cx a0 a1;");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unexpected character"));
        // The stream still contains everything after the bad char.
        assert!(tokens.iter().filter(|t| t.kind == TokenKind::Word).count() >= 4);
    }
}

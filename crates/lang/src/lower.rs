//! Resolution and lowering: spanned surface AST → [`square_qir::Program`].
//!
//! Resolution binds callee names to module indices (with "did you
//! mean" hints), orders modules topologically when the source uses
//! forward references (the canonical listing never does, so lowering
//! a pretty-printed program preserves module ids exactly — the
//! round-trip guarantee), and re-states every `square_qir::validate`
//! per-module rule *with source spans*: operand bounds, call arity,
//! aliased arguments, duplicated gate operands, and the entry
//! signature. Whole-program rules that need the finished call graph
//! (store discipline, acyclicity) run inside
//! [`square_qir::ProgramBuilder::finish`] and are mapped back onto the
//! offending module's span.

use std::collections::HashMap;

use square_qir::{ModuleId, Operand, Program, ProgramBuilder, QirError};

use crate::ast::{SourceModule, SourceProgram, SourceStmt};
use crate::diag::{suggest, Diagnostic, Span};

/// Resolves and lowers a parsed program onto the IR builder.
///
/// # Errors
///
/// Every resolution failure found, each with a source span; the vector
/// is non-empty on failure.
pub fn lower(ast: &SourceProgram) -> Result<Program, Vec<Diagnostic>> {
    let mut diags = Vec::new();

    if ast.modules.is_empty() {
        diags.push(Diagnostic::new(
            Span::default(),
            "empty program: expected at least one `entry module`",
        ));
        return Err(diags);
    }

    // Exactly one entry module.
    let entries: Vec<usize> = ast
        .modules
        .iter()
        .enumerate()
        .filter(|(_, m)| m.is_entry())
        .map(|(i, _)| i)
        .collect();
    match entries.as_slice() {
        [] => diags.push(
            Diagnostic::new(ast.modules[0].name_span, "no module is marked `entry`")
                .with_help("mark the top-level module: `entry module …`"),
        ),
        [_one] => {}
        [_first, rest @ ..] => {
            for &i in rest {
                let m = &ast.modules[i];
                diags.push(
                    Diagnostic::new(
                        m.entry_span.unwrap_or(m.name_span),
                        format!("duplicate `entry` marker on module `{}`", m.name),
                    )
                    .with_help(format!(
                        "module `{}` is already the entry",
                        ast.modules[entries[0]].name
                    )),
                );
            }
        }
    }

    // Unique names; build the name → index map.
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for (i, m) in ast.modules.iter().enumerate() {
        if let Some(&first) = by_name.get(m.name.as_str()) {
            diags.push(
                Diagnostic::new(m.name_span, format!("duplicate module name `{}`", m.name))
                    .with_help(format!("first defined as module #{}", first + 1)),
            );
        } else {
            by_name.insert(m.name.as_str(), i);
        }
    }

    // Resolve call targets and run the spanned per-module checks.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ast.modules.len()];
    for (i, m) in ast.modules.iter().enumerate() {
        check_module(m, &by_name, ast, &mut diags, &mut edges[i]);
    }
    if !diags.is_empty() {
        return Err(diags);
    }

    // Dependency order: keep source order when it is already
    // topological (it always is for canonical listings); otherwise
    // sort stably, and report cycles on a participating module.
    let order = match dependency_order(ast, &edges) {
        Ok(order) => order,
        Err(cycle_idx) => {
            let m = &ast.modules[cycle_idx];
            return Err(vec![Diagnostic::new(
                m.name_span,
                format!(
                    "recursive call cycle involving module `{}` \
                     (reversible programs must form a DAG)",
                    m.name
                ),
            )]);
        }
    };

    // Lower in dependency order.
    let mut b = ProgramBuilder::new();
    let mut ids: Vec<Option<ModuleId>> = vec![None; ast.modules.len()];
    for &idx in &order {
        let m = &ast.modules[idx];
        let built = b.module(m.name.clone(), m.params, m.ancillas, |mb| {
            mb.declare_clbits(m.clbits);
            let emit = |mb: &mut square_qir::ModuleBuilder<'_>, stmts: &[SourceStmt]| {
                for stmt in stmts {
                    match stmt {
                        SourceStmt::Gate { gate, .. } => mb.gate(gate.map(|so| so.op)),
                        SourceStmt::Call { callee, args, .. } => {
                            let callee_id = ids[by_name[callee.as_str()]]
                                .expect("callees lower before callers");
                            let args: Vec<Operand> = args.iter().map(|a| a.op).collect();
                            mb.call(callee_id, &args);
                        }
                        SourceStmt::Measure { qubit, clbit, .. } => mb.measure(qubit.op, *clbit),
                        SourceStmt::CondGate { clbit, gate, .. } => {
                            mb.cond_gate(*clbit, gate.map(|so| so.op));
                        }
                    }
                }
            };
            emit(mb, &m.compute);
            if !m.store.is_empty() {
                mb.store();
                emit(mb, &m.store);
            }
            if let Some(unc) = &m.uncompute {
                mb.uncompute();
                emit(mb, unc);
            }
        });
        match built {
            Ok(id) => ids[idx] = Some(id),
            // Defensive: the spanned pre-checks mirror the builder's
            // rules, so this only fires if the two drift.
            Err(e) => return Err(vec![qir_error_diag(&e, ast)]),
        }
    }
    let entry_id = ids[entries[0]].expect("entry was lowered");
    b.finish(entry_id)
        .map_err(|e| vec![qir_error_diag(&e, ast)])
}

/// Spanned re-statement of `square_qir::validate`'s per-module rules.
fn check_module(
    m: &SourceModule,
    by_name: &HashMap<&str, usize>,
    ast: &SourceProgram,
    diags: &mut Vec<Diagnostic>,
    callees: &mut Vec<usize>,
) {
    if m.is_entry() && m.params != 0 {
        diags.push(
            Diagnostic::new(
                m.name_span,
                format!(
                    "entry module `{}` declares {} params; the entry takes no caller qubits",
                    m.name, m.params
                ),
            )
            .with_help("model program inputs as entry ancilla"),
        );
    }
    // A written `N clbits` clause is a declared bound: statements may
    // not reach past it. An absent clause keeps on-demand growth.
    let check_clbit = |clbit: usize, clbit_span: Span, diags: &mut Vec<Diagnostic>| {
        if m.clbits_span.is_some() && clbit >= m.clbits {
            diags.push(
                Diagnostic::new(
                    clbit_span,
                    format!(
                        "classical bit `c{clbit}` is out of range: module `{}` declares {} clbit{}",
                        m.name,
                        m.clbits,
                        if m.clbits == 1 { "" } else { "s" }
                    ),
                )
                .with_help(
                    "the `clbits` header is a declared bound; raise it, or drop the \
                     clause to size classical storage on demand",
                ),
            );
        }
    };
    let check_operand = |so: &crate::ast::SourceOperand, diags: &mut Vec<Diagnostic>| {
        let (ok, what, declared) = match so.op {
            Operand::Param(i) => (i < m.params, "param", m.params),
            Operand::Ancilla(i) => (i < m.ancillas, "ancilla", m.ancillas),
        };
        if !ok {
            diags.push(Diagnostic::new(
                so.span,
                format!(
                    "operand `{}` is out of range: module `{}` declares {declared} {what}{}",
                    so.op,
                    m.name,
                    if declared == 1 { "" } else { "s" }
                ),
            ));
        }
    };
    for stmt in m
        .compute
        .iter()
        .chain(&m.store)
        .chain(m.uncompute.iter().flatten())
    {
        match stmt {
            SourceStmt::Gate { gate, span } | SourceStmt::CondGate { gate, span, .. } => {
                gate.for_each_qubit(|so| check_operand(so, diags));
                if gate.map(|so| so.op).has_duplicate_operand() {
                    diags.push(Diagnostic::new(
                        *span,
                        format!("gate uses the same qubit twice in module `{}`", m.name),
                    ));
                }
            }
            SourceStmt::Measure { qubit, .. } => check_operand(qubit, diags),
            SourceStmt::Call {
                callee,
                callee_span,
                args,
                span,
            } => {
                for a in args {
                    check_operand(a, diags);
                }
                let Some(&target_idx) = by_name.get(callee.as_str()) else {
                    let mut d =
                        Diagnostic::new(*callee_span, format!("call to unknown module `{callee}`"));
                    if let Some(s) = suggest(callee, by_name.keys().copied()) {
                        d = d.with_help(format!("did you mean `{s}`?"));
                    }
                    diags.push(d);
                    continue;
                };
                callees.push(target_idx);
                let target = &ast.modules[target_idx];
                if target.params != args.len() {
                    diags.push(Diagnostic::new(
                        *span,
                        format!(
                            "call to `{callee}` passes {} argument{}, but it declares {} param{}",
                            args.len(),
                            if args.len() == 1 { "" } else { "s" },
                            target.params,
                            if target.params == 1 { "" } else { "s" },
                        ),
                    ));
                }
                for (i, a) in args.iter().enumerate() {
                    if args[i + 1..].iter().any(|b| b.op == a.op) {
                        diags.push(Diagnostic::new(
                            *span,
                            format!(
                                "call to `{callee}` passes `{}` for two different parameters",
                                a.op
                            ),
                        ));
                        break;
                    }
                }
            }
        }
        match stmt {
            SourceStmt::Measure {
                clbit, clbit_span, ..
            }
            | SourceStmt::CondGate {
                clbit, clbit_span, ..
            } => check_clbit(*clbit, *clbit_span, diags),
            _ => {}
        }
    }
}

/// Source order when it is already dependency-ordered; otherwise a
/// stable topological sort (smallest source index first). `Err` names
/// a module on a cycle.
fn dependency_order(ast: &SourceProgram, edges: &[Vec<usize>]) -> Result<Vec<usize>, usize> {
    let n = ast.modules.len();
    if edges
        .iter()
        .enumerate()
        .all(|(i, callees)| callees.iter().all(|&c| c < i))
    {
        return Ok((0..n).collect());
    }
    // Kahn's algorithm over caller→callee edges reversed (callees
    // first), always picking the smallest ready source index.
    let mut indegree = vec![0usize; n]; // number of unlowered callees
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in edges.iter().enumerate() {
        let mut uniq = callees.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &callee in &uniq {
            indegree[caller] += 1;
            callers[callee].push(caller);
        }
    }
    let mut ready: std::collections::BTreeSet<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&next) = ready.iter().next() {
        ready.remove(&next);
        order.push(next);
        for &caller in &callers[next] {
            indegree[caller] -= 1;
            if indegree[caller] == 0 {
                ready.insert(caller);
            }
        }
    }
    if order.len() < n {
        // Unordered modules are those whose callee-subtree contains a
        // cycle — which includes innocent callers upstream of one. To
        // anchor the diagnostic on an actual participant, walk callee
        // edges within the unordered set (every unordered module has
        // at least one unordered callee); the first revisited module
        // is on a cycle.
        let unordered: Vec<bool> = (0..n).map(|i| !order.contains(&i)).collect();
        let start = unordered.iter().position(|&u| u).unwrap_or(0);
        let mut seen = vec![false; n];
        let mut cur = start;
        while !seen[cur] {
            seen[cur] = true;
            match edges[cur].iter().copied().find(|&c| unordered[c]) {
                Some(next) => cur = next,
                None => break, // defensive: cannot happen for unordered nodes
            }
        }
        return Err(cur);
    }
    Ok(order)
}

/// Maps a residual builder/validator error onto the offending module's
/// name span (the spanned pre-checks make this a rare fallback, e.g.
/// store-discipline violations that need the whole call graph).
fn qir_error_diag(e: &QirError, ast: &SourceProgram) -> Diagnostic {
    let named = |name: &str| {
        ast.modules
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.name_span)
            .unwrap_or_default()
    };
    let span = match e {
        QirError::OperandOutOfRange { module, .. }
        | QirError::RecursiveCall { module }
        | QirError::DuplicatedQubit { module }
        | QirError::StoreDiscipline { module, .. }
        | QirError::EntryHasParams { module } => named(module),
        QirError::ArityMismatch { caller, .. } | QirError::AliasedArguments { caller, .. } => {
            named(caller)
        }
        _ => Span::default(),
    };
    Diagnostic::new(span, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn lower_src(src: &str) -> Result<Program, Vec<Diagnostic>> {
        let (ast, diags) = parse_source(src);
        assert!(diags.is_empty(), "parse: {diags:?}");
        lower(&ast)
    }

    #[test]
    fn lowers_and_validates_a_program() {
        let p = lower_src(
            "module f(2 params, 1 ancilla) {
               compute { cx p0 a0; }
               store { cx a0 p1; }
             }
             entry module main(0 params, 2 ancilla) {
               compute { x a0; call f(a0, a1); }
             }",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.module(p.entry()).name(), "main");
        square_qir::validate::validate_program(&p).unwrap();
    }

    #[test]
    fn measurement_statements_lower_and_round_trip() {
        let p = lower_src(
            "entry module main(0 params, 1 ancilla, 2 clbits) {
               compute { x a0; measure a0 c0; cond c0 x a0; }
             }",
        )
        .unwrap();
        let m = p.module(p.entry());
        assert_eq!(m.clbits(), 2, "header reserves beyond the used bit");
        assert_eq!(m.compute().len(), 3);
        square_qir::validate::validate_program(&p).unwrap();
        // The canonical listing (which prints the clbits clause) must
        // parse back to the identical program.
        crate::check_roundtrip(&p).unwrap();
    }

    #[test]
    fn forward_references_are_topologically_sorted() {
        let p = lower_src(
            "entry module main(0 params, 2 ancilla) {
               compute { call f(a0, a1); }
             }
             module f(2 params, 0 ancilla) {
               compute { cx p0 p1; }
             }",
        )
        .unwrap();
        // `f` lowers first (id 0), entry is `main`.
        assert_eq!(p.module(ModuleId::from_index(0)).name(), "f");
        assert_eq!(p.module(p.entry()).name(), "main");
    }

    #[test]
    fn unknown_callee_suggests_a_name() {
        let err = lower_src(
            "module fun1(1 params, 0 ancilla) { compute { x p0; } }
             entry module main(0 params, 1 ancilla) {
               compute { call fun2(a0); }
             }",
        )
        .unwrap_err();
        assert!(err[0].message.contains("unknown module `fun2`"));
        assert_eq!(err[0].help.as_deref(), Some("did you mean `fun1`?"));
    }

    #[test]
    fn arity_bounds_alias_and_entry_params_all_diagnose() {
        let err = lower_src(
            "module f(2 params, 0 ancilla) { compute { cx p0 p1; } }
             entry module main(1 params, 3 ancilla) {
               compute {
                 x a7;
                 call f(a0);
                 call f(a1, a1);
               }
             }",
        )
        .unwrap_err();
        let all = err
            .iter()
            .map(|d| d.message.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(all.contains("declares 1 params"), "{all}");
        assert!(all.contains("out of range"), "{all}");
        assert!(all.contains("passes 1 argument"), "{all}");
        assert!(all.contains("for two different parameters"), "{all}");
    }

    #[test]
    fn cycles_are_rejected_and_name_a_participant() {
        let err = lower_src(
            "entry module main(0 params, 1 ancilla) { compute { call a(a0); } }
             module a(1 params, 0 ancilla) { compute { call b(p0); } }
             module b(1 params, 0 ancilla) { compute { call a(p0); } }",
        )
        .unwrap_err();
        assert!(err[0].message.contains("recursive call cycle"), "{err:?}");
        // `main` merely calls into the cycle; the diagnostic must name
        // an actual cycle member (`a` or `b`), not the innocent caller.
        assert!(
            err[0].message.contains("module `a`") || err[0].message.contains("module `b`"),
            "{err:?}"
        );
    }

    #[test]
    fn missing_and_duplicate_entry_diagnose() {
        let err = lower_src("module m(0 params, 1 ancilla) { compute { x a0; } }").unwrap_err();
        assert!(err[0].message.contains("no module is marked `entry`"));

        let err = lower_src(
            "entry module a(0 params, 1 ancilla) { compute { x a0; } }
             entry module b(0 params, 1 ancilla) { compute { x a0; } }",
        )
        .unwrap_err();
        assert!(err[0].message.contains("duplicate `entry`"), "{err:?}");
    }

    #[test]
    fn store_discipline_violations_map_to_the_module() {
        let err = lower_src(
            "module bad(1 params, 1 ancilla) {
               compute { cx p0 a0; }
               store { x a0; }
             }
             entry module main(0 params, 1 ancilla) {
               compute { call bad(a0); }
             }",
        )
        .unwrap_err();
        assert!(err[0].message.contains("store discipline"), "{err:?}");
    }
}

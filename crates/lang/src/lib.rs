//! # square-lang — the `.sq` textual frontend
//!
//! A complete frontend for the small textual language whose surface
//! syntax is the Fig. 6-style module listing that
//! [`square_qir::pretty::program_listing`] emits: programs are sets of
//! `module name(P params, A ancilla) { compute { … } store { … }
//! uncompute { … } }` items with exactly one `entry module`. This is
//! the path by which *arbitrary external programs* enter the SQUARE
//! pipeline: `parse_program` takes source text to a validated
//! [`square_qir::Program`], and the `squarec` driver (in
//! `square-bench`) takes a `.sq` file end-to-end through compile,
//! route, and the `square-verify` oracle stack.
//!
//! ## Grammar (EBNF)
//!
//! ```text
//! program   = import* module* ;
//! import    = "import" name ";" ;        (* brings every module of `name.sq` into scope *)
//! module    = [ "entry" ] "module" name
//!             "(" number "params" "," number "ancilla"
//!             [ "," number "clbits" ] ")"
//!             "{" block* "}" ;
//! block     = ( "compute" | "store" | "uncompute" ) "{" stmt* "}" ;
//! stmt      = ( gate | call | measure | cond ) ";" ;
//! gate      = "x" operand
//!           | "cx" operand operand
//!           | "ccx" operand operand operand
//!           | "swap" operand operand
//!           | "mcx" operand+ ;              (* controls…, target *)
//! call      = "call" name "(" [ operand { "," operand } ] ")" ;
//! measure   = "measure" operand clbit ;     (* mid-circuit, into a classical bit *)
//! cond      = "cond" clbit gate ;           (* gate fires only when the bit is 1 *)
//! operand   = ( "p" | "a" ) digits ;        (* p3 = param, a0 = ancilla *)
//! clbit     = "c" digits ;                  (* module-local classical bit *)
//! name      = word ;
//! word      = ( letter | digit | "_" )+ ;   (* names may start with a digit: `2of5` *)
//! ```
//!
//! Blocks appear at most once each, in compute–store–uncompute order;
//! an absent block is empty, except `uncompute`, whose *absence* means
//! "mechanically invert the compute block" while an explicit
//! `uncompute {}` means "do nothing". Gate mnemonics are
//! case-insensitive and `not`/`cnot`/`toffoli` are accepted aliases.
//! Comments run from `//` or `#` to end of line. The `clbits` header
//! clause is optional — when absent, `measure`/`cond` statements grow
//! the count on demand; when written, it is a *declared bound* and a
//! statement using a classical bit at or past it is an error. The
//! canonical listing prints the clause only for modules that measure,
//! so measurement-free programs round-trip byte-identically to the
//! pre-clause syntax.
//!
//! ## Imports
//!
//! `import name;` items (which must precede the first module) bring
//! every module of another file into scope — see [`modules`] for the
//! resolution pass, the [`modules::ModuleLoader`] abstraction, and
//! the search-path rules. [`parse_program`] itself is single-file (it
//! has no file context) and rejects imports with a pointer at
//! [`modules::parse_files`]; the `squarec` driver resolves them
//! against the importing file's directory, `--search-path`
//! directories, and `lib/`.
//!
//! ## Round trip
//!
//! The listing printer and this parser are inverse bijections on valid
//! programs: `parse_program(&program_listing(&p)) == Ok(p)`
//! structurally, for every `p` the IR accepts (property-tested over
//! the synthetic generator and the full benchmark catalog, and checked
//! by the pipeline fuzzer on every generated program).
//!
//! ```
//! use square_qir::pretty::program_listing;
//!
//! let source = "
//!     module fun1(4 params, 1 ancilla) {
//!       compute {
//!         ccx p0 p1 p2;
//!         cx p2 a0;
//!       }
//!       store {
//!         cx a0 p3;
//!       }
//!     }
//!     entry module main(0 params, 4 ancilla) {
//!       compute {
//!         call fun1(a0, a1, a2, a3);
//!       }
//!     }
//! ";
//! let program = square_lang::parse_program(source).expect("parses");
//! assert_eq!(program.len(), 2);
//! assert_eq!(program.module(program.entry()).name(), "main");
//! // Canonical listing → parse is the identity.
//! let listing = program_listing(&program);
//! assert_eq!(square_lang::parse_program(&listing), Ok(program));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod modules;
pub mod parser;

pub use diag::{line_col, render, suggest, Diagnostic, Span};
pub use lower::lower;
pub use modules::{parse_files, MapLoader, ModuleLoader, SearchPathLoader, SourceMap};
pub use parser::{parse_source, GATE_ALIASES, GATE_MNEMONICS};

use square_qir::Program;

/// Parses, resolves, and lowers `.sq` source into a validated
/// [`Program`], collecting *all* diagnostics (lexical, syntactic, and
/// resolution errors) rather than stopping at the first.
///
/// # Errors
///
/// A non-empty list of spanned diagnostics; render them with
/// [`render`].
pub fn parse_program(source: &str) -> Result<Program, Vec<Diagnostic>> {
    let (ast, mut diags) = parser::parse_source(source);
    // This entry point has no file context to resolve imports against
    // (it serves in-memory sources: the round-trip check, the service
    // wire format). Multi-file programs go through `modules::parse_files`.
    for imp in &ast.imports {
        diags.push(
            Diagnostic::new(
                imp.span,
                format!("`import {}` requires a file context", imp.name),
            )
            .with_help(
                "this entry point is single-file; compile the file with `squarec` \
                 (or `square_lang::parse_files`), or pre-flatten with `squarec --emit listing`",
            ),
        );
    }
    if !diags.is_empty() {
        return Err(diags);
    }
    lower::lower(&ast)
}

/// A broken `parse(pretty(p)) == p` round trip (see [`check_roundtrip`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTripError {
    /// The canonical listing that failed to reproduce the program.
    pub listing: String,
    /// One-line description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for RoundTripError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for RoundTripError {}

/// Checks the frontend's central contract on one program: the
/// canonical listing (`square_qir::pretty::program_listing`) must
/// parse back to a structurally identical [`Program`]. Shared by the
/// pipeline fuzzer, the `squarec --roundtrip` flag, the round-trip
/// test suites, and the `sq_frontend` example.
///
/// # Errors
///
/// [`RoundTripError`] carrying the listing and a one-line reason
/// (reparse diagnostics or a structural mismatch).
pub fn check_roundtrip(program: &Program) -> Result<(), RoundTripError> {
    let listing = square_qir::pretty::program_listing(program);
    match parse_program(&listing) {
        Ok(parsed) if &parsed == program => Ok(()),
        Ok(_) => Err(RoundTripError {
            listing,
            detail: "pretty → parse produced a structurally different program".to_string(),
        }),
        Err(diags) => {
            let first = diags
                .first()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "no diagnostics".to_string());
            Err(RoundTripError {
                detail: format!("canonical listing failed to parse: {first}"),
                listing,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_program_aggregates_parse_and_lowering_errors() {
        // Two distinct layers of failure in one source: a syntax error
        // (caught by the parser) aborts before lowering …
        let err = parse_program("module m(1 params 1 ancilla) { }").unwrap_err();
        assert!(err[0].message.contains("expected `,`"), "{err:?}");
        // … while a clean parse with a resolution error surfaces the
        // lowering diagnostics.
        let err =
            parse_program("entry module main(0 params, 1 ancilla) { compute { call ghost(a0); } }")
                .unwrap_err();
        assert!(err[0].message.contains("unknown module `ghost`"), "{err:?}");
    }

    #[test]
    fn diagnostics_carry_line_and_column() {
        let src = "entry module main(0 params, 1 ancilla) {\n  compute {\n    zz a0;\n  }\n}\n";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err[0].line_col(src), (3, 5));
    }
}

//! Spanned surface AST for `.sq` programs.
//!
//! The surface tree mirrors [`square_qir::Module`] one-to-one but
//! keeps module references *by name* and attaches a [`Span`] to every
//! construct a later pass might need to report on. Resolution (name →
//! [`square_qir::ModuleId`], arity and bounds checks) and lowering to
//! the builder live in [`crate::lower`].

use square_qir::{Gate, Operand};

use crate::diag::Span;

/// A parsed `.sq` compilation unit: imports and modules in source
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceProgram {
    /// `import name;` items, in the order they appear in the file.
    pub imports: Vec<SourceImport>,
    /// Modules in the order they appear in the file.
    pub modules: Vec<SourceModule>,
}

/// One `import name;` item: a request to bring every module of the
/// file `name.sq` (resolved against the importing file's directory,
/// then the search path) into this file's scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceImport {
    /// Imported unit name as written (`std` resolves to `std.sq`).
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Span of the whole `import name;` item.
    pub span: Span,
}

/// One `module name(P params, A ancilla) { … }` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceModule {
    /// Module name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Span of the `entry` marker, when present.
    pub entry_span: Option<Span>,
    /// Declared parameter count.
    pub params: usize,
    /// Declared ancilla count.
    pub ancillas: usize,
    /// Declared classical-bit count (0 when the header has no
    /// `clbits` clause; `measure`/`cond` statements grow the count on
    /// demand during lowering, exactly as the builder does).
    pub clbits: usize,
    /// Span of the `N clbits` header clause, when one was written. A
    /// present clause is a *declared bound*: statements may not use
    /// classical bits at or beyond it. An absent clause (`None`) keeps
    /// the historical on-demand growth.
    pub clbits_span: Option<Span>,
    /// Statements of the `compute { … }` block (empty when absent).
    pub compute: Vec<SourceStmt>,
    /// Statements of the `store { … }` block (empty when absent).
    pub store: Vec<SourceStmt>,
    /// The explicit `uncompute { … }` block. `None` means the block is
    /// absent (mechanical inversion); `Some(vec![])` means an explicit
    /// empty block (uncomputation is a no-op) — the distinction the
    /// lossless listing preserves.
    pub uncompute: Option<Vec<SourceStmt>>,
}

impl SourceModule {
    /// True when this module carries the `entry` marker.
    pub fn is_entry(&self) -> bool {
        self.entry_span.is_some()
    }
}

/// One statement inside a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStmt {
    /// A gate over spanned operands, e.g. `ccx p0 p1 a0;`.
    Gate {
        /// The gate, operands carrying their individual spans.
        gate: Gate<SourceOperand>,
        /// Span of the whole statement (mnemonic through last operand).
        span: Span,
    },
    /// A call by module name, e.g. `call fun1(a0, p1);`.
    Call {
        /// Callee name as written.
        callee: String,
        /// Span of the callee name token.
        callee_span: Span,
        /// Arguments with their spans.
        args: Vec<SourceOperand>,
        /// Span of the whole statement.
        span: Span,
    },
    /// A mid-circuit measurement, e.g. `measure a0 c0;`.
    Measure {
        /// The measured qubit.
        qubit: SourceOperand,
        /// Destination classical bit (module-local index).
        clbit: usize,
        /// Span of the destination clbit token.
        clbit_span: Span,
        /// Span of the whole statement.
        span: Span,
    },
    /// A classically guarded gate, e.g. `cond c0 x a0;`.
    CondGate {
        /// Guarding classical bit (module-local index).
        clbit: usize,
        /// Span of the guard clbit token.
        clbit_span: Span,
        /// The guarded gate.
        gate: Gate<SourceOperand>,
        /// Span of the whole statement.
        span: Span,
    },
}

impl SourceStmt {
    /// The statement's full span.
    pub fn span(&self) -> Span {
        match self {
            SourceStmt::Gate { span, .. }
            | SourceStmt::Call { span, .. }
            | SourceStmt::Measure { span, .. }
            | SourceStmt::CondGate { span, .. } => *span,
        }
    }
}

/// A module-frame qubit reference (`p3` / `a0`) with its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceOperand {
    /// The operand.
    pub op: Operand,
    /// Span of the operand token.
    pub span: Span,
}

//! Property tests over all five topologies (grid, full, line,
//! heavy-hex, ring): metric axioms, path validity, next-hop/BFS
//! agreement, neighbour/coupling consistency, and ring-iterator
//! ordering. These are the invariants every router — greedy or
//! lookahead — silently assumes.

use proptest::prelude::*;
use square_arch::{
    FullTopology, GridTopology, HeavyHexTopology, LineTopology, PhysId, RingTopology, Topology,
};

/// Deterministically builds one of the five topologies from a fuzzed
/// selector + two size knobs (all sizes kept small enough that the
/// quadratic pair checks stay fast).
fn build_topology(kind: u8, a: u32, b: u32) -> Box<dyn Topology> {
    match kind % 5 {
        0 => Box::new(GridTopology::new(1 + a % 7, 1 + b % 7)),
        1 => Box::new(FullTopology::new(1 + a % 20)),
        2 => Box::new(LineTopology::new(1 + a % 28)),
        3 => Box::new(HeavyHexTopology::new(1 + a % 5)),
        _ => Box::new(RingTopology::new(1 + a % 22)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distance is a metric: identity, positivity, symmetry, and the
    /// triangle inequality over sampled triples.
    #[test]
    fn distance_is_a_metric(kind in 0u8..5, a in 0u32..100, b in 0u32..100,
                            triples in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..24)) {
        let topo = build_topology(kind, a, b);
        let n = topo.qubit_count() as u32;
        for (x, y, z) in triples {
            let (x, y, z) = (PhysId(x % n), PhysId(y % n), PhysId(z % n));
            prop_assert_eq!(topo.distance(x, x), 0, "identity ({})", topo.name());
            if x != y {
                prop_assert!(topo.distance(x, y) > 0, "positivity ({})", topo.name());
            }
            prop_assert_eq!(topo.distance(x, y), topo.distance(y, x), "symmetry ({})", topo.name());
            prop_assert!(
                topo.distance(x, z) <= topo.distance(x, y) + topo.distance(y, z),
                "triangle inequality ({}): d({x},{z}) > d({x},{y}) + d({y},{z})",
                topo.name()
            );
        }
    }

    /// `shortest_path(a, b)` is a coupled walk from `a` to `b` of
    /// exactly `distance(a, b) + 1` cells.
    #[test]
    fn shortest_paths_are_valid_coupled_walks(kind in 0u8..5, a in 0u32..100, b in 0u32..100,
                                              pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16)) {
        let topo = build_topology(kind, a, b);
        let n = topo.qubit_count() as u32;
        for (x, y) in pairs {
            let (x, y) = (PhysId(x % n), PhysId(y % n));
            let path = topo.shortest_path(x, y);
            prop_assert_eq!(path.first(), Some(&x), "{}", topo.name());
            prop_assert_eq!(path.last(), Some(&y), "{}", topo.name());
            prop_assert_eq!(path.len() as u32, topo.distance(x, y) + 1, "{}: {x}->{y}", topo.name());
            for w in path.windows(2) {
                prop_assert!(topo.are_coupled(w[0], w[1]),
                    "{}: path step {} -> {} not coupled", topo.name(), w[0], w[1]);
            }
        }
    }

    /// Walking `next_hop` from `a` to `b` takes exactly
    /// `distance(a, b)` hops — the cached tables and the closed forms
    /// agree with BFS on path length.
    #[test]
    fn next_hop_walks_match_bfs_distance(kind in 0u8..5, a in 0u32..100, b in 0u32..100,
                                         pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16)) {
        let topo = build_topology(kind, a, b);
        let n = topo.qubit_count() as u32;
        for (x, y) in pairs {
            let (x, y) = (PhysId(x % n), PhysId(y % n));
            prop_assert_eq!(topo.next_hop(x, x), None, "{}", topo.name());
            let mut cur = x;
            let mut hops = 0u32;
            while cur != y {
                let hop = topo.next_hop(cur, y).expect("connected fabric");
                prop_assert!(topo.are_coupled(cur, hop),
                    "{}: next_hop {} -> {} not an edge", topo.name(), cur, hop);
                prop_assert_eq!(topo.distance(hop, y), topo.distance(cur, y) - 1,
                    "{}: hop does not make progress", topo.name());
                cur = hop;
                hops += 1;
            }
            prop_assert_eq!(hops, topo.distance(x, y), "{}", topo.name());
        }
    }

    /// `neighbors` and `are_coupled` agree exactly, coupling is
    /// symmetric and irreflexive, and every neighbour is at distance 1.
    #[test]
    fn neighbors_agree_with_coupling(kind in 0u8..5, a in 0u32..100, b in 0u32..100) {
        let topo = build_topology(kind, a, b);
        let n = topo.qubit_count() as u32;
        for x in 0..n {
            let x = PhysId(x);
            let nbs = topo.neighbors(x);
            for &nb in &nbs {
                prop_assert!(topo.are_coupled(x, nb), "{}", topo.name());
                prop_assert!(topo.are_coupled(nb, x), "{}: coupling asymmetric", topo.name());
                prop_assert_eq!(topo.distance(x, nb), 1, "{}", topo.name());
            }
            prop_assert!(!topo.are_coupled(x, x), "{}: self-coupled", topo.name());
            for y in 0..n {
                let y = PhysId(y);
                prop_assert_eq!(
                    topo.are_coupled(x, y),
                    nbs.contains(&y),
                    "{}: neighbors/are_coupled disagree on ({x}, {y})",
                    topo.name()
                );
            }
        }
    }

    /// `ring_iter` from any qubit's own coordinate visits every qubit
    /// exactly once in nondecreasing graph-distance order from that
    /// qubit — the contract the locality-aware allocator relies on to
    /// stop at the first free cell.
    #[test]
    fn ring_iter_orders_by_nondecreasing_distance(kind in 0u8..5, a in 0u32..100, b in 0u32..100,
                                                  center in any::<u32>()) {
        let topo = build_topology(kind, a, b);
        let n = topo.qubit_count() as u32;
        let c = PhysId(center % n);
        let order: Vec<PhysId> = topo.ring_iter(topo.coord(c)).collect();
        prop_assert_eq!(order.len() as u32, n, "{}: not every qubit visited", topo.name());
        let mut seen = order.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len() as u32, n, "{}: duplicate visits", topo.name());
        let dists: Vec<u32> = order.iter().map(|&q| topo.distance(c, q)).collect();
        prop_assert!(
            dists.windows(2).all(|w| w[0] <= w[1]),
            "{}: ring order not nondecreasing from {}: {:?}",
            topo.name(), c, dists
        );
    }
}

//! Device descriptions: communication model + noise parameters.
//!
//! Noise figures follow Table IV of the paper: our simulation point is
//! 0.1% single-qubit error, 1% two-qubit error, T1 = 50 µs,
//! T2 = 70 µs, alongside the published IBM and IonQ device figures for
//! context.

/// How long-distance two-qubit gates are resolved on the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommModel {
    /// NISQ: chains of SWAP gates; latency grows with distance
    /// (each SWAP is three CNOTs).
    SwapChains,
    /// FT (surface code): braids of arbitrary length complete in
    /// constant time but may not cross; conflicts serialize.
    Braiding,
}

impl CommModel {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            CommModel::SwapChains => "swap-chains",
            CommModel::Braiding => "braiding",
        }
    }
}

/// Gate-error and coherence parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Single-qubit gate error probability.
    pub p1: f64,
    /// Two-qubit gate error probability.
    pub p2: f64,
    /// Amplitude-damping (relaxation) time constant, microseconds.
    pub t1_us: f64,
    /// Dephasing time constant, microseconds.
    pub t2_us: f64,
    /// Duration of one scheduler cycle (one gate), nanoseconds.
    pub cycle_ns: f64,
}

impl NoiseParams {
    /// The simulation point of Table IV: 0.1% / 1% gate errors,
    /// T1 = 50 µs, T2 = 70 µs. Cycle time 200 ns approximates
    /// superconducting two-qubit gate durations.
    pub fn paper_simulation() -> Self {
        NoiseParams {
            p1: 0.001,
            p2: 0.01,
            t1_us: 50.0,
            t2_us: 70.0,
            cycle_ns: 200.0,
        }
    }

    /// IBM superconducting device figures quoted in Table IV
    /// (< 1% / < 2%, T1 = 55 µs, T2 = 60 µs).
    pub fn ibm_sup() -> Self {
        NoiseParams {
            p1: 0.01,
            p2: 0.02,
            t1_us: 55.0,
            t2_us: 60.0,
            cycle_ns: 200.0,
        }
    }

    /// IonQ trapped-ion figures quoted in Table IV (< 1% / < 2%,
    /// T1 and T2 effectively unbounded).
    pub fn ionq_trap() -> Self {
        NoiseParams {
            p1: 0.01,
            p2: 0.02,
            t1_us: 1e6,
            t2_us: 1e6,
            cycle_ns: 200.0,
        }
    }

    /// This noise model, uniformly scaled: error probabilities are
    /// multiplied by `factor` and coherence times divided by it.
    /// Used to calibrate simulation magnitudes to the paper's reported
    /// figures (see EXPERIMENTS.md) while preserving orderings.
    pub fn scaled(&self, factor: f64) -> Self {
        NoiseParams {
            p1: (self.p1 * factor).min(1.0),
            p2: (self.p2 * factor).min(1.0),
            t1_us: self.t1_us / factor,
            t2_us: self.t2_us / factor,
            cycle_ns: self.cycle_ns,
        }
    }

    /// Idealized noiseless device (for differential testing).
    pub fn noiseless() -> Self {
        NoiseParams {
            p1: 0.0,
            p2: 0.0,
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            cycle_ns: 200.0,
        }
    }

    /// Probability that a qubit stays coherent for `cycles` scheduler
    /// cycles (worst-case exponential model used by Fig. 8b).
    pub fn coherence_prob(&self, cycles: u64) -> f64 {
        if !self.t1_us.is_finite() {
            return 1.0;
        }
        let t_ns = cycles as f64 * self.cycle_ns;
        (-t_ns / (self.t1_us * 1000.0)).exp()
    }

    /// Probability a basis state |1⟩ relaxes to |0⟩ over `cycles`
    /// cycles (used by the Monte-Carlo trajectory simulator).
    pub fn relax_prob(&self, cycles: u64) -> f64 {
        1.0 - self.coherence_prob(cycles)
    }
}

/// A complete target: communication model, machine size, noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Communication model (swap chains vs braiding).
    pub comm: CommModel,
    /// Noise parameters for fidelity estimation and simulation.
    pub noise: NoiseParams,
}

impl Device {
    /// NISQ device at the paper's simulation noise point.
    pub fn nisq() -> Self {
        Device {
            comm: CommModel::SwapChains,
            noise: NoiseParams::paper_simulation(),
        }
    }

    /// FT device: braiding communication; logical gate/measurement
    /// overheads are uniform, so the NISQ noise figures are reused
    /// only where a report asks for them.
    pub fn ft() -> Self {
        Device {
            comm: CommModel::Braiding,
            noise: NoiseParams::paper_simulation(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_decays_monotonically() {
        let n = NoiseParams::paper_simulation();
        let p0 = n.coherence_prob(0);
        let p1k = n.coherence_prob(1000);
        let p10k = n.coherence_prob(10_000);
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!(p1k > p10k);
        assert!(p10k > 0.0);
    }

    #[test]
    fn ionq_is_effectively_coherent() {
        // T1 > 10^6 µs: 100k cycles of 200 ns is 20 ms, still > 95%.
        let n = NoiseParams::ionq_trap();
        assert!(n.coherence_prob(100_000) > 0.95);
    }

    #[test]
    fn noiseless_never_relaxes() {
        let n = NoiseParams::noiseless();
        assert_eq!(n.relax_prob(u64::MAX / 2), 0.0);
    }

    #[test]
    fn table_iv_simulation_point() {
        let n = NoiseParams::paper_simulation();
        assert_eq!(n.p1, 0.001);
        assert_eq!(n.p2, 0.01);
        assert_eq!(n.t1_us, 50.0);
        assert_eq!(n.t2_us, 70.0);
    }
}

//! # square-arch — machine models for the SQUARE compiler
//!
//! Describes the target architectures of the paper's evaluation:
//!
//! * **NISQ**: a 2-D lattice of physical qubits with nearest-neighbour
//!   coupling (the layout used by IBM/Google-style superconducting
//!   devices), a fully-connected model (trapped ions, IonQ), and a
//!   linear chain for stress tests. Long-distance two-qubit gates are
//!   resolved with *swap chains* whose latency grows with distance.
//! * **FT**: surface-code logical qubits laid out on a 2-D tile grid
//!   with routing channels; two-qubit gates are resolved by *braiding*
//!   — constant-time paths that may not cross (see `square-route`).
//!
//! The crate also carries the device noise parameters of Table IV,
//! consumed by the analytical success-rate model and the Monte-Carlo
//! noise simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coupling;
pub mod device;
pub mod layouts;
pub mod topology;

pub use coupling::{CouplingGraph, FlatTables};
pub use device::{CommModel, Device, NoiseParams};
pub use layouts::{HeavyHexTopology, RingTopology};
pub use topology::{FullTopology, GridTopology, LineTopology, PhysId, Topology};

//! Graph-backed layouts: IBM-style heavy-hex and a 1-D ring.
//!
//! Unlike the closed-form layouts in [`crate::topology`] (grid, full,
//! line), these have no analytic distance formula, so they derive all
//! geometry from a [`CouplingGraph`]: BFS all-pairs distances, cached
//! next-hop tables, and graph-distance ring ordering.

use crate::coupling::{CouplingGraph, FlatTables};
use crate::topology::{PhysId, Topology};

/// IBM-style heavy-hex lattice of distance `d`.
///
/// The construction follows the heavy-hexagon code layout used by
/// IBM's superconducting devices: a `d × d` array of *data* qubits
/// whose rows are chains joined through *flag* qubits (one per
/// horizontal edge — the "heavy" edges), with *syndrome* qubits
/// bridging adjacent rows at alternating columns so the cells tile as
/// hexagons. Every qubit has degree ≤ 3, the defining property that
/// makes heavy-hex routing so much harder than lattice routing.
///
/// Index layout (deterministic): data qubits row-major first, then
/// flag qubits row-major, then syndrome qubits row-major.
#[derive(Debug)]
pub struct HeavyHexTopology {
    d: u32,
    graph: CouplingGraph,
}

impl HeavyHexTopology {
    /// Creates the distance-`d` heavy-hex lattice.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: u32) -> Self {
        assert!(d > 0, "heavy-hex distance must be positive");
        let mut coords: Vec<(i32, i32)> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let data = |r: u32, c: u32| r * d + c;
        // Data qubits: (r, c) at geometric (2c, 2r).
        for r in 0..d {
            for c in 0..d {
                coords.push((2 * c as i32, 2 * r as i32));
            }
        }
        // Flag qubits: one per horizontal data-data edge ("heavy").
        for r in 0..d {
            for c in 0..d.saturating_sub(1) {
                let flag = coords.len() as u32;
                coords.push((2 * c as i32 + 1, 2 * r as i32));
                edges.push((flag, data(r, c)));
                edges.push((flag, data(r, c + 1)));
            }
        }
        // Syndrome qubits: vertical bridges at alternating columns
        // (column parity tracks row parity, which is what turns the
        // square cells into hexagons).
        for r in 0..d.saturating_sub(1) {
            for c in 0..d {
                if c % 2 != r % 2 {
                    continue;
                }
                let syn = coords.len() as u32;
                coords.push((2 * c as i32, 2 * r as i32 + 1));
                edges.push((syn, data(r, c)));
                edges.push((syn, data(r + 1, c)));
            }
        }
        HeavyHexTopology {
            d,
            graph: CouplingGraph::new(coords, &edges),
        }
    }

    /// The smallest heavy-hex lattice (odd `d`, the code-distance
    /// convention) holding at least `n` qubits.
    pub fn with_capacity(n: usize) -> Self {
        let mut d = 1;
        loop {
            let hex = HeavyHexTopology::new(d);
            if hex.qubit_count() >= n {
                return hex;
            }
            d += 2;
        }
    }

    /// The lattice distance parameter.
    pub fn distance_param(&self) -> u32 {
        self.d
    }

    /// The backing coupling graph.
    pub fn coupling(&self) -> &CouplingGraph {
        &self.graph
    }
}

impl Topology for HeavyHexTopology {
    fn name(&self) -> &str {
        "heavyhex"
    }

    fn qubit_count(&self) -> usize {
        self.graph.len()
    }

    fn coord(&self, q: PhysId) -> (i32, i32) {
        self.graph.coord(q)
    }

    fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        self.graph.distance(a, b)
    }

    fn neighbors(&self, q: PhysId) -> Vec<PhysId> {
        self.graph.neighbors(q).to_vec()
    }

    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        for &nb in self.graph.neighbors(q) {
            f(nb);
        }
    }

    fn flat_tables(&self) -> Option<FlatTables> {
        Some(self.graph.shared_tables())
    }

    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        self.graph.shortest_path(a, b)
    }

    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        self.graph.next_hop(a, b)
    }

    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_> {
        Box::new(self.graph.ring_order(center).into_iter())
    }
}

/// A 1-D ring (cycle) of `n` qubits: like [`crate::LineTopology`] but
/// with wrap-around coupling, so the worst-case distance halves. The
/// geometric embedding walks the perimeter of a square so centroids
/// and braid paths stay two-dimensional.
#[derive(Debug)]
pub struct RingTopology {
    n: u32,
    graph: CouplingGraph,
}

impl RingTopology {
    /// Creates an `n`-qubit ring.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "machine must have at least one qubit");
        let coords = perimeter_coords(n);
        let mut edges = Vec::with_capacity(n as usize);
        if n > 1 {
            for i in 0..n {
                edges.push((i, (i + 1) % n));
            }
        }
        RingTopology {
            n,
            graph: CouplingGraph::new(coords, &edges),
        }
    }

    /// A ring holding at least `n` qubits (exactly `n`: rings come in
    /// every size).
    pub fn with_capacity(n: usize) -> Self {
        RingTopology::new(n.max(1) as u32)
    }

    /// The backing coupling graph.
    pub fn coupling(&self) -> &CouplingGraph {
        &self.graph
    }
}

/// `n` distinct integer points walking the perimeter of the smallest
/// square that fits them, clockwise from the origin.
fn perimeter_coords(n: u32) -> Vec<(i32, i32)> {
    if n == 1 {
        return vec![(0, 0)];
    }
    let side = (n as i32 + 3) / 4 + 1;
    let mut coords = Vec::with_capacity(n as usize);
    let (mut x, mut y) = (0, 0);
    let legs = [(1, 0), (0, 1), (-1, 0), (0, -1)];
    let mut leg = 0;
    loop {
        coords.push((x, y));
        if coords.len() == n as usize {
            break;
        }
        let (dx, dy) = legs[leg];
        let (nx, ny) = (x + dx, y + dy);
        if nx < 0 || ny < 0 || nx >= side || ny >= side || (leg == 3 && ny == 0) {
            leg += 1;
            let (dx, dy) = legs[leg];
            x += dx;
            y += dy;
        } else {
            x = nx;
            y = ny;
        }
    }
    coords
}

impl Topology for RingTopology {
    fn name(&self) -> &str {
        "ring"
    }

    fn qubit_count(&self) -> usize {
        self.n as usize
    }

    fn coord(&self, q: PhysId) -> (i32, i32) {
        self.graph.coord(q)
    }

    fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        // Closed form (cheaper than the table and always available):
        // the shorter way around the cycle.
        let d = a.0.abs_diff(b.0);
        d.min(self.n - d)
    }

    fn neighbors(&self, q: PhysId) -> Vec<PhysId> {
        self.graph.neighbors(q).to_vec()
    }

    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        for &nb in self.graph.neighbors(q) {
            f(nb);
        }
    }

    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let mut cur = a;
        path.push(cur);
        while cur != b {
            cur = self.next_hop(cur, b).expect("cycle is connected");
            path.push(cur);
        }
        path
    }

    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        // Closed form — a ring never needs the n × n tables (which
        // would make `ring:200000` allocate hundreds of GB): step the
        // shorter way around, and on an exact tie step toward `a`'s
        // lower-indexed neighbour, matching what the BFS table builder
        // would have answered (it dequeues ascending neighbours).
        if a == b {
            return None;
        }
        let forward = (b.0 + self.n - a.0) % self.n;
        let backward = self.n - forward;
        let fwd = PhysId((a.0 + 1) % self.n);
        let bwd = PhysId((a.0 + self.n - 1) % self.n);
        Some(match forward.cmp(&backward) {
            std::cmp::Ordering::Less => fwd,
            std::cmp::Ordering::Greater => bwd,
            std::cmp::Ordering::Equal => {
                if fwd.0 < bwd.0 {
                    fwd
                } else {
                    bwd
                }
            }
        })
    }

    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_> {
        // Closed-form ring order (again avoiding the tables): sort by
        // cycle distance from the qubit nearest the center, ties by
        // index — the same order `CouplingGraph::ring_order` yields.
        let anchor = self.graph.nearest_to(center);
        let mut order: Vec<PhysId> = (0..self.n).map(PhysId).collect();
        order.sort_by_key(|&q| (self.distance(anchor, q), q.0));
        Box::new(order.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hex_counts_and_degree() {
        for d in [1u32, 2, 3, 5] {
            let hex = HeavyHexTopology::new(d);
            let n = hex.qubit_count();
            // data d², flags d(d−1), syndromes per alternating column.
            assert!(n >= (d * d) as usize, "d={d}");
            for q in 0..n as u32 {
                let deg = hex.neighbors(PhysId(q)).len();
                assert!(deg <= 3, "d={d}: {q} has degree {deg}");
                if n > 1 {
                    assert!(deg >= 1, "d={d}: {q} disconnected");
                }
            }
        }
    }

    #[test]
    fn heavy_hex_is_connected() {
        let hex = HeavyHexTopology::new(3);
        let n = hex.qubit_count();
        for q in 1..n as u32 {
            assert!(
                hex.distance(PhysId(0), PhysId(q)) < u32::MAX,
                "qubit {q} unreachable"
            );
        }
    }

    #[test]
    fn heavy_hex_with_capacity_fits() {
        for n in [1usize, 5, 20, 57, 100] {
            let hex = HeavyHexTopology::with_capacity(n);
            assert!(hex.qubit_count() >= n);
            assert_eq!(hex.distance_param() % 2, 1, "odd code distance");
        }
    }

    #[test]
    fn ring_distance_wraps() {
        let ring = RingTopology::new(10);
        assert_eq!(ring.distance(PhysId(0), PhysId(9)), 1);
        assert_eq!(ring.distance(PhysId(0), PhysId(5)), 5);
        assert_eq!(ring.distance(PhysId(2), PhysId(8)), 4);
        // Graph tables agree with the closed form.
        for a in 0..10u32 {
            for b in 0..10u32 {
                assert_eq!(
                    ring.coupling().distance(PhysId(a), PhysId(b)),
                    ring.distance(PhysId(a), PhysId(b)),
                    "{a}->{b}"
                );
            }
        }
    }

    #[test]
    fn ring_next_hop_matches_bfs_tables_including_ties() {
        // Even ring: antipodal pairs tie both ways; the closed form
        // must pick exactly what the BFS table builder would.
        for n in [2u32, 4, 8, 9, 10] {
            let ring = RingTopology::new(n);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        ring.next_hop(PhysId(a), PhysId(b)),
                        ring.coupling().next_hop(PhysId(a), PhysId(b)),
                        "n={n}: {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_paths_may_wrap_around() {
        let ring = RingTopology::new(8);
        let p = ring.shortest_path(PhysId(1), PhysId(7));
        assert_eq!(p.len(), 3, "wraps through 0: {p:?}");
        assert_eq!(p.first(), Some(&PhysId(1)));
        assert_eq!(p.last(), Some(&PhysId(7)));
    }

    #[test]
    fn ring_coords_are_distinct() {
        for n in [1u32, 2, 3, 4, 7, 12, 17] {
            let ring = RingTopology::new(n);
            let mut coords: Vec<_> = (0..n).map(|q| ring.coord(PhysId(q))).collect();
            coords.sort_unstable();
            coords.dedup();
            assert_eq!(coords.len(), n as usize, "n={n}");
        }
    }

    #[test]
    fn ring_iter_orders_by_graph_distance() {
        let ring = RingTopology::new(9);
        let order: Vec<PhysId> = ring.ring_iter(ring.coord(PhysId(4))).collect();
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], PhysId(4));
        let dists: Vec<u32> = order.iter().map(|&q| ring.distance(PhysId(4), q)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }
}

//! Graph-backed coupling store: adjacency lists plus lazily-built
//! all-pairs BFS distance and next-hop tables.
//!
//! The hand-coded layouts (grid, full, line) derive distance and
//! shortest paths in closed form; irregular layouts (heavy-hex, ring)
//! cannot. [`CouplingGraph`] is the backing store for those: it owns
//! the adjacency lists and geometric embedding, and on first distance
//! query builds the full `n × n` BFS distance matrix together with a
//! *next-hop* table (`next[a][b]` = the neighbour of `a` that is first
//! on a shortest `a → b` path). Table construction is parallelized
//! over BFS sources with rayon; afterwards every distance and next-hop
//! lookup is O(1) and every shortest path walks the table without
//! re-running a search — which is what lets the lookahead router score
//! thousands of candidate swaps per gate without allocating.

use std::sync::{Arc, OnceLock};

use rayon::prelude::*;

use crate::topology::PhysId;

/// Sentinel in the next-hop table: no hop (self or unreachable).
const NO_HOP: u32 = u32::MAX;

/// Shared views of a graph's flat all-pairs tables: `n × n` row-major
/// hop counts and first hops. `Arc`-backed so routing scratch state
/// can hold the tables without borrowing the topology — the cheap,
/// clonable handle a `RoutingCtx` keeps for incremental distance
/// maintenance across swaps.
#[derive(Debug, Clone)]
pub struct FlatTables {
    n: usize,
    dist: Arc<[u32]>,
    next: Arc<[u32]>,
}

impl FlatTables {
    /// Hop-count distance via one flat-array read.
    #[inline]
    pub fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// First hop of a shortest `a → b` path via one flat-array read
    /// (`None` when `a == b` or unreachable).
    #[inline]
    pub fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        match self.next[a.index() * self.n + b.index()] {
            NO_HOP => None,
            hop => Some(PhysId(hop)),
        }
    }
}

/// An undirected coupling graph with a 2-D geometric embedding and
/// cached all-pairs shortest-path tables.
#[derive(Debug)]
pub struct CouplingGraph {
    coords: Vec<(i32, i32)>,
    adj: Vec<Vec<PhysId>>,
    /// Flattened `n × n` hop-count matrix, built on first use
    /// (`Arc` so [`FlatTables`] handles share it without copying).
    dist: OnceLock<Arc<[u32]>>,
    /// Flattened `n × n` next-hop matrix (same build).
    next: OnceLock<Arc<[u32]>>,
}

impl CouplingGraph {
    /// Builds the graph from per-qubit coordinates and undirected
    /// edges. Neighbour lists are kept sorted by index so BFS orders —
    /// and therefore next-hop choices and routed swap chains — are
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph or an out-of-range edge endpoint.
    pub fn new(coords: Vec<(i32, i32)>, edges: &[(u32, u32)]) -> Self {
        let n = coords.len();
        assert!(n > 0, "coupling graph must have at least one qubit");
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
            assert_ne!(a, b, "self-coupling");
            adj[a as usize].push(PhysId(b));
            adj[b as usize].push(PhysId(a));
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        CouplingGraph {
            coords,
            adj,
            dist: OnceLock::new(),
            next: OnceLock::new(),
        }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True for the (disallowed) empty graph — present for clippy's
    /// `len_without_is_empty`; construction guarantees `false`.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Geometric position of a qubit.
    pub fn coord(&self, q: PhysId) -> (i32, i32) {
        self.coords[q.index()]
    }

    /// Neighbours of `q`, sorted by index.
    pub fn neighbors(&self, q: PhysId) -> &[PhysId] {
        &self.adj[q.index()]
    }

    /// True if `a` and `b` share an edge.
    pub fn are_coupled(&self, a: PhysId, b: PhysId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Builds (once) both all-pairs tables: one BFS per source, in
    /// parallel over sources. `next[s*n + v]` is the first hop of a
    /// shortest `s → v` path — the shortest path whose hops BFS in
    /// ascending-neighbour order discovers first, so routing is
    /// deterministic.
    fn tables(&self) -> (&[u32], &[u32]) {
        let dist = self.dist.get_or_init(|| {
            let n = self.len();
            let sources: Vec<usize> = (0..n).collect();
            let rows: Vec<(Vec<u32>, Vec<u32>)> =
                sources.into_par_iter().map(|s| self.bfs_row(s)).collect();
            let mut dist = Vec::with_capacity(n * n);
            let mut next = Vec::with_capacity(n * n);
            for (d, h) in rows {
                dist.extend_from_slice(&d);
                next.extend_from_slice(&h);
            }
            // Publish the next-hop half through its own cell; both
            // halves come from the same build so they stay consistent.
            let _ = self.next.set(next.into());
            dist.into()
        });
        let next = self.next.get().expect("set together with dist");
        (dist, next)
    }

    /// Shared handles to the flat tables (building them on first use).
    pub fn shared_tables(&self) -> FlatTables {
        let _ = self.tables();
        FlatTables {
            n: self.len(),
            dist: Arc::clone(self.dist.get().expect("built above")),
            next: Arc::clone(self.next.get().expect("built above")),
        }
    }

    /// One BFS row: distances and first hops from source `s`.
    fn bfs_row(&self, s: usize) -> (Vec<u32>, Vec<u32>) {
        let n = self.len();
        let mut dist = vec![u32::MAX; n];
        let mut next = vec![NO_HOP; n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        dist[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &nb in &self.adj[u] {
                let v = nb.index();
                if dist[v] != u32::MAX {
                    continue;
                }
                dist[v] = dist[u] + 1;
                // First hop toward v: the neighbour itself when we are
                // the source, else whatever first hop reached u.
                next[v] = if u == s { v as u32 } else { next[u] };
                queue.push_back(v);
            }
        }
        (dist, next)
    }

    /// Hop-count distance (`u32::MAX` between disconnected qubits —
    /// the shipped layouts are all connected).
    pub fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        if a == b {
            return 0;
        }
        let (dist, _) = self.tables();
        dist[a.index() * self.len() + b.index()]
    }

    /// The neighbour of `a` that is first on a shortest path to `b`
    /// (`None` when `a == b` or `b` is unreachable).
    pub fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        if a == b {
            return None;
        }
        let (_, next) = self.tables();
        match next[a.index() * self.len() + b.index()] {
            NO_HOP => None,
            hop => Some(PhysId(hop)),
        }
    }

    /// A shortest path from `a` to `b` inclusive of both endpoints,
    /// reconstructed by walking the next-hop table.
    pub fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let mut cur = a;
        path.push(cur);
        while cur != b {
            match self.next_hop(cur, b) {
                Some(hop) => {
                    cur = hop;
                    path.push(cur);
                }
                None => break, // disconnected; return the partial walk
            }
        }
        path
    }

    /// The qubit whose embedding is geometrically nearest `center`
    /// (Manhattan; ties broken by lowest index).
    pub fn nearest_to(&self, center: (i32, i32)) -> PhysId {
        let mut best = PhysId(0);
        let mut best_d = i64::MAX;
        for (i, &(x, y)) in self.coords.iter().enumerate() {
            let d = (x as i64 - center.0 as i64).abs() + (y as i64 - center.1 as i64).abs();
            if d < best_d {
                best_d = d;
                best = PhysId(i as u32);
            }
        }
        best
    }

    /// Every qubit ordered by nondecreasing *graph* distance from the
    /// qubit nearest `center` (ties by index) — the ring order the
    /// locality-aware allocator consumes.
    pub fn ring_order(&self, center: (i32, i32)) -> Vec<PhysId> {
        let anchor = self.nearest_to(center);
        let mut order: Vec<PhysId> = (0..self.len() as u32).map(PhysId).collect();
        order.sort_by_key(|&q| (self.distance(anchor, q), q.0));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-cycle with a tail: 0-1-2-3-0, 3-4.
    fn cycle_with_tail() -> CouplingGraph {
        CouplingGraph::new(
            vec![(0, 0), (1, 0), (1, 1), (0, 1), (-1, 1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)],
        )
    }

    #[test]
    fn distances_are_bfs_hops() {
        let g = cycle_with_tail();
        assert_eq!(g.distance(PhysId(0), PhysId(0)), 0);
        assert_eq!(g.distance(PhysId(0), PhysId(2)), 2);
        assert_eq!(g.distance(PhysId(1), PhysId(4)), 3);
        assert_eq!(g.distance(PhysId(4), PhysId(1)), 3, "symmetry");
    }

    #[test]
    fn next_hop_walks_a_shortest_path() {
        let g = cycle_with_tail();
        let path = g.shortest_path(PhysId(1), PhysId(4));
        assert_eq!(path.len() as u32, g.distance(PhysId(1), PhysId(4)) + 1);
        assert_eq!(path.first(), Some(&PhysId(1)));
        assert_eq!(path.last(), Some(&PhysId(4)));
        for w in path.windows(2) {
            assert!(g.are_coupled(w[0], w[1]));
        }
        assert_eq!(g.next_hop(PhysId(2), PhysId(2)), None);
        // Deterministic tie-break: 0→2 via the lower-indexed branch.
        assert_eq!(g.next_hop(PhysId(0), PhysId(2)), Some(PhysId(1)));
    }

    #[test]
    fn ring_order_is_nondecreasing_graph_distance() {
        let g = cycle_with_tail();
        let order = g.ring_order((0, 0));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], PhysId(0));
        let dists: Vec<u32> = order.iter().map(|&q| g.distance(PhysId(0), q)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }

    #[test]
    fn neighbors_sorted_and_deduped() {
        let g = CouplingGraph::new(vec![(0, 0), (1, 0), (2, 0)], &[(1, 0), (2, 1), (0, 1)]);
        assert_eq!(g.neighbors(PhysId(1)), &[PhysId(0), PhysId(2)]);
        assert!(g.are_coupled(PhysId(0), PhysId(1)));
        assert!(!g.are_coupled(PhysId(0), PhysId(2)));
    }
}

//! Qubit topologies: coupling graphs with geometric locality.
//!
//! The allocation heuristics need three things from a machine layout:
//! pairwise distance (communication cost), shortest paths (swap-chain
//! routing), and "qubits near a point, nearest first" (locality-aware
//! allocation). [`Topology`] provides all three; the concrete layouts
//! are [`GridTopology`] (2-D lattice), [`FullTopology`] (all-to-all)
//! and [`LineTopology`] (1-D chain).

use std::fmt;

use crate::coupling::FlatTables;

/// A physical qubit slot on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysId(pub u32);

impl PhysId {
    /// Raw index into the machine's qubit array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A coupling graph with 2-D geometry.
///
/// Distances are hop counts on the coupling graph; coordinates give
/// the geometric embedding used by locality scores and braid routing.
///
/// `Send + Sync` is a supertrait so built topologies — including the
/// graph-backed layouts whose BFS distance/next-hop tables build
/// lazily behind `OnceLock` — can be shared across threads via
/// `Arc<dyn Topology>`: a compile server builds each machine's tables
/// once and every concurrent request reuses them.
pub trait Topology: Send + Sync {
    /// Short name for reports ("lattice", "full", "line").
    fn name(&self) -> &str;

    /// Number of physical qubits on the machine.
    fn qubit_count(&self) -> usize;

    /// Geometric position of a qubit.
    fn coord(&self, q: PhysId) -> (i32, i32);

    /// Coupling-graph distance in hops (0 for `a == b`, 1 for coupled
    /// qubits). A swap chain between `a` and `b` needs
    /// `distance(a, b) − 1` swaps.
    fn distance(&self, a: PhysId, b: PhysId) -> u32;

    /// True if a two-qubit gate can act directly on `a` and `b`.
    fn are_coupled(&self, a: PhysId, b: PhysId) -> bool {
        self.distance(a, b) == 1
    }

    /// Qubits directly coupled to `q`.
    fn neighbors(&self, q: PhysId) -> Vec<PhysId>;

    /// Calls `f` for every neighbour of `q`, in exactly the order
    /// [`Topology::neighbors`] lists them — the allocation-free form
    /// the routing hot path iterates with. The default delegates to
    /// `neighbors`; every shipped layout overrides it to avoid the
    /// per-call `Vec`.
    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        for nb in self.neighbors(q) {
            f(nb);
        }
    }

    /// True when [`Topology::distance`] equals the Manhattan distance
    /// between [`Topology::coord`] embeddings (grid, line). Routing
    /// caches the coordinate array and answers such distances with
    /// two array reads instead of a virtual call.
    fn manhattan_distance(&self) -> bool {
        false
    }

    /// Shared flat all-pairs distance/next-hop tables, when the
    /// layout is graph-backed and bounded enough to afford them
    /// (heavy-hex). `None` for closed-form layouts — including rings,
    /// whose O(n²) tables would dwarf the machine itself.
    fn flat_tables(&self) -> Option<FlatTables> {
        None
    }

    /// A shortest path from `a` to `b`, inclusive of both endpoints.
    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId>;

    /// The neighbour of `a` that is first on a shortest path toward
    /// `b` (`None` when `a == b`). The closed-form layouts answer in
    /// O(1); graph-backed layouts read their cached next-hop table.
    /// Routers use this to walk swap chains without materializing
    /// whole path `Vec`s.
    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        if a == b {
            None
        } else {
            self.shortest_path(a, b).get(1).copied()
        }
    }

    /// Qubits ordered by nondecreasing *graph* distance from the
    /// qubit nearest `center` — the contract the locality-aware
    /// allocator relies on to stop at the first free cell. For the
    /// closed-form layouts (grid, full, line) geometric and graph
    /// distance coincide; graph-backed layouts (heavy-hex, ring)
    /// order by hop count, which can diverge from the embedding.
    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_>;

    /// The first qubit in [`Topology::ring_iter`] order accepted by
    /// `pred` — the allocator's "nearest matching cell" query. The
    /// default walks `ring_iter`; layouts on the allocation hot path
    /// (grid) override it with a direct loop, since the boxed
    /// iterator's per-cell overhead dominates late-compile scans that
    /// cross the whole used region before finding a match.
    fn ring_find(
        &self,
        center: (i32, i32),
        pred: &mut dyn FnMut(PhysId) -> bool,
    ) -> Option<PhysId> {
        self.ring_iter(center).find(|&p| pred(p))
    }
}

/// 2-D lattice with nearest-neighbour coupling (row-major indexing),
/// the NISQ layout of the paper's Section V-C experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridTopology {
    width: u32,
    height: u32,
}

impl GridTopology {
    /// Creates a `width × height` lattice.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        GridTopology { width, height }
    }

    /// The smallest near-square grid holding at least `n` qubits.
    pub fn with_capacity(n: usize) -> Self {
        let side = (n as f64).sqrt().ceil() as u32;
        let side = side.max(1);
        let height = ((n as u32) + side - 1) / side.max(1);
        GridTopology::new(side, height.max(1))
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    fn xy(&self, q: PhysId) -> (i32, i32) {
        let x = q.0 % self.width;
        let y = q.0 / self.width;
        (x as i32, y as i32)
    }

    fn id_at(&self, x: i32, y: i32) -> Option<PhysId> {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            None
        } else {
            Some(PhysId(y as u32 * self.width + x as u32))
        }
    }
}

impl Topology for GridTopology {
    fn name(&self) -> &str {
        "lattice"
    }

    fn qubit_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    fn coord(&self, q: PhysId) -> (i32, i32) {
        self.xy(q)
    }

    fn neighbors(&self, q: PhysId) -> Vec<PhysId> {
        let (x, y) = self.xy(q);
        [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
            .into_iter()
            .filter_map(|(nx, ny)| self.id_at(nx, ny))
            .collect()
    }

    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        // Same order as `neighbors`: +x, −x, +y, −y.
        let (x, y) = self.xy(q);
        for (nx, ny) in [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)] {
            if let Some(nb) = self.id_at(nx, ny) {
                f(nb);
            }
        }
    }

    fn manhattan_distance(&self) -> bool {
        true
    }

    fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        // L-shaped route: walk x first, then y.
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let (mut x, mut y) = (ax, ay);
        path.push(a);
        while x != bx {
            x += (bx - x).signum();
            path.push(self.id_at(x, y).expect("in bounds"));
        }
        while y != by {
            y += (by - y).signum();
            path.push(self.id_at(x, y).expect("in bounds"));
        }
        path
    }

    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        // First step of the L-shaped route: x first, then y (must
        // match [`GridTopology::shortest_path`] hop for hop).
        if a == b {
            return None;
        }
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        if ax != bx {
            self.id_at(ax + (bx - ax).signum(), ay)
        } else {
            self.id_at(ax, ay + (by - ay).signum())
        }
    }

    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_> {
        let grid = *self;
        let max_radius = (self.width + self.height) as i32;
        let iter = (0..=max_radius).flat_map(move |r| {
            // All lattice points at Manhattan radius r from center.
            // Fixed-size option pairs, not `Vec`s: this iterator runs
            // once per allocation decision, so a heap allocation per
            // lattice point would dominate the allocator's cost.
            let (cx, cy) = center;
            (-r..=r).flat_map(move |dx| {
                let dy = r - dx.abs();
                let above = grid.id_at(cx + dx, cy + dy);
                let below = if dy != 0 {
                    grid.id_at(cx + dx, cy - dy)
                } else {
                    None
                };
                [above, below].into_iter().flatten()
            })
        });
        Box::new(iter)
    }

    fn ring_find(
        &self,
        center: (i32, i32),
        pred: &mut dyn FnMut(PhysId) -> bool,
    ) -> Option<PhysId> {
        // Direct-loop twin of `ring_iter` (same enumeration order,
        // cell for cell) without the boxed-iterator machinery.
        let (cx, cy) = center;
        let max_radius = (self.width + self.height) as i32;
        for r in 0..=max_radius {
            for dx in -r..=r {
                let dy = r - dx.abs();
                if let Some(q) = self.id_at(cx + dx, cy + dy) {
                    if pred(q) {
                        return Some(q);
                    }
                }
                if dy != 0 {
                    if let Some(q) = self.id_at(cx + dx, cy - dy) {
                        if pred(q) {
                            return Some(q);
                        }
                    }
                }
            }
        }
        None
    }
}

/// All-to-all coupling (trapped-ion style): every pair is distance 1,
/// so no swap chains are ever needed. This is the "fully-connected"
/// machine of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullTopology {
    n: u32,
}

impl FullTopology {
    /// Creates an `n`-qubit fully-connected machine.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "machine must have at least one qubit");
        FullTopology { n }
    }
}

impl Topology for FullTopology {
    fn name(&self) -> &str {
        "full"
    }

    fn qubit_count(&self) -> usize {
        self.n as usize
    }

    fn coord(&self, q: PhysId) -> (i32, i32) {
        // Geometry is irrelevant for all-to-all machines; a line
        // embedding keeps coordinates well-defined for reports.
        (q.0 as i32, 0)
    }

    fn neighbors(&self, q: PhysId) -> Vec<PhysId> {
        (0..self.n).map(PhysId).filter(|&p| p != q).collect()
    }

    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        for p in (0..self.n).map(PhysId) {
            if p != q {
                f(p);
            }
        }
    }

    fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        u32::from(a != b)
    }

    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        if a == b {
            vec![a]
        } else {
            vec![a, b]
        }
    }

    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        (a != b).then_some(b)
    }

    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_> {
        // All qubits are equally close; yield them in index order
        // starting from the center's embedding for determinism.
        let n = self.n;
        let start = center.0.clamp(0, n as i32 - 1) as u32;
        Box::new((0..n).map(move |i| PhysId((start + i) % n)))
    }
}

/// 1-D chain coupling, the most locality-constrained layout; useful
/// for stress-testing allocation policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineTopology {
    n: u32,
}

impl LineTopology {
    /// Creates an `n`-qubit chain.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "machine must have at least one qubit");
        LineTopology { n }
    }
}

impl Topology for LineTopology {
    fn name(&self) -> &str {
        "line"
    }

    fn qubit_count(&self) -> usize {
        self.n as usize
    }

    fn coord(&self, q: PhysId) -> (i32, i32) {
        (q.0 as i32, 0)
    }

    fn neighbors(&self, q: PhysId) -> Vec<PhysId> {
        let mut v = Vec::with_capacity(2);
        if q.0 + 1 < self.n {
            v.push(PhysId(q.0 + 1));
        }
        if q.0 > 0 {
            v.push(PhysId(q.0 - 1));
        }
        v
    }

    fn for_each_neighbor(&self, q: PhysId, f: &mut dyn FnMut(PhysId)) {
        // Same order as `neighbors`: +1 then −1.
        if q.0 + 1 < self.n {
            f(PhysId(q.0 + 1));
        }
        if q.0 > 0 {
            f(PhysId(q.0 - 1));
        }
    }

    fn manhattan_distance(&self) -> bool {
        true
    }

    fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        a.0.abs_diff(b.0)
    }

    fn shortest_path(&self, a: PhysId, b: PhysId) -> Vec<PhysId> {
        let step = if b.0 >= a.0 { 1i64 } else { -1 };
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let mut x = a.0 as i64;
        path.push(a);
        while x != b.0 as i64 {
            x += step;
            path.push(PhysId(x as u32));
        }
        path
    }

    fn next_hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        match b.0.cmp(&a.0) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(PhysId(a.0 + 1)),
            std::cmp::Ordering::Less => Some(PhysId(a.0 - 1)),
        }
    }

    fn ring_iter(&self, center: (i32, i32)) -> Box<dyn Iterator<Item = PhysId> + '_> {
        let n = self.n as i32;
        let c = center.0.clamp(0, n - 1);
        let iter = (0..n).flat_map(move |r| {
            let pair = if r == 0 {
                [Some(PhysId(c as u32)), None]
            } else {
                [
                    (c + r < n).then(|| PhysId((c + r) as u32)),
                    (c - r >= 0).then(|| PhysId((c - r) as u32)),
                ]
            };
            pair.into_iter().flatten()
        });
        Box::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_distance_is_manhattan() {
        let g = GridTopology::new(4, 4);
        // (0,0) -> (3,2): |3| + |2| = 5
        assert_eq!(g.distance(PhysId(0), PhysId(11)), 5);
        assert_eq!(g.distance(PhysId(5), PhysId(5)), 0);
    }

    #[test]
    fn grid_path_endpoints_and_adjacency() {
        let g = GridTopology::new(5, 5);
        let path = g.shortest_path(PhysId(0), PhysId(24));
        assert_eq!(path.first(), Some(&PhysId(0)));
        assert_eq!(path.last(), Some(&PhysId(24)));
        assert_eq!(path.len() as u32, g.distance(PhysId(0), PhysId(24)) + 1);
        for w in path.windows(2) {
            assert!(g.are_coupled(w[0], w[1]), "{:?} {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn grid_ring_iter_visits_all_in_distance_order() {
        let g = GridTopology::new(4, 3);
        let seen: Vec<PhysId> = g.ring_iter((1, 1)).collect();
        assert_eq!(seen.len(), 12, "every qubit visited exactly once");
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
        let center = PhysId(1 + 4);
        let dists: Vec<u32> = seen.iter().map(|&q| g.distance(center, q)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }

    #[test]
    fn with_capacity_fits() {
        for n in [1usize, 2, 5, 16, 17, 100, 101] {
            let g = GridTopology::with_capacity(n);
            assert!(g.qubit_count() >= n, "n={n} got {}", g.qubit_count());
        }
    }

    #[test]
    fn full_topology_is_distance_one() {
        let t = FullTopology::new(8);
        assert_eq!(t.distance(PhysId(0), PhysId(7)), 1);
        assert_eq!(t.distance(PhysId(3), PhysId(3)), 0);
        assert_eq!(t.shortest_path(PhysId(0), PhysId(7)).len(), 2);
        let all: Vec<_> = t.ring_iter((0, 0)).collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn line_paths_walk_the_chain() {
        let t = LineTopology::new(10);
        let p = t.shortest_path(PhysId(7), PhysId(2));
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], PhysId(7));
        assert_eq!(p[5], PhysId(2));
        let ring: Vec<_> = t.ring_iter((5, 0)).collect();
        assert_eq!(ring.len(), 10);
        assert_eq!(ring[0], PhysId(5));
    }
}

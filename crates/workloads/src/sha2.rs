//! SHA-2 round function (the SHA2 benchmark of Table II).
//!
//! Per the paper (footnote 5), SHA2 is "multiple rounds of in-place
//! modular additions and bit rotations", following the reversible
//! construction of Parent–Roetteler–Svore: per round the nonlinear
//! words Ch(e,f,g), Maj(a,b,c) and the rotation XORs Σ0(a), Σ1(e) are
//! computed into ancilla; `h += Σ1 + Ch + (K_t + W_t)` and `d += h`
//! and `h += Σ0 + Maj` run as in-place additions; and the working
//! variables rotate by *renaming* (free wire relabeling at the call
//! site). The ancilla are unloaded by a custom uncompute block that
//! does not undo the in-place additions.
//!
//! The message schedule W_t is fixed at compile time (constants folded
//! into `K_t + W_t`) — the paper's benchmark likewise evaluates the
//! compression function as an oracle over a fixed message block.

use square_qir::{ModuleId, Operand, ProgramBuilder, QirError};

use crate::arith::{cuccaro_add, mask, ModuleCache};

/// SHA-2 style rotation amounts; the real SHA-256 constants when the
/// word width is 32, scaled-down versions for narrow test widths.
fn sigma_rotations(w: usize) -> ([usize; 3], [usize; 3]) {
    if w >= 32 {
        ([2, 13, 22], [6, 11, 25])
    } else {
        ([1, (w / 3).max(2), (2 * w / 3).max(3)], [2, w / 2, w - 2])
    }
}

/// One SHA-2 round as a module: params = the 8 working words
/// `[a b c d e f g h]` (8·w qubits). After the round the new state is
/// obtained by rotating the register list one position at the call
/// site: `(a' … h') = (h a b c d e f g)` with the in-place updates to
/// `h` (new `a'`) and `d` (new `e'`).
pub fn sha2_round(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    w: usize,
    round_constant: u64,
) -> Result<ModuleId, QirError> {
    assert!(w >= 4, "word width must be at least 4");
    let kc = round_constant & mask(w);
    let adder = cuccaro_add(b, cache, w)?;
    let const_add = crate::arith::const_add_inplace(b, cache, w, kc)?;
    let ([r0a, r0b, r0c], [r1a, r1b, r1c]) = sigma_rotations(w);
    b.module(format!("sha2round_{w}_{kc:x}"), 8 * w, 4 * w, |m| {
        let word = |m: &mut square_qir::ModuleBuilder, idx: usize| -> Vec<Operand> {
            (0..w).map(|i| m.param(idx * w + i)).collect()
        };
        let a = word(m, 0);
        let bw = word(m, 1);
        let c = word(m, 2);
        let d = word(m, 3);
        let e = word(m, 4);
        let f = word(m, 5);
        let g = word(m, 6);
        let h = word(m, 7);
        let s1: Vec<Operand> = (0..w).map(|i| m.ancilla(i)).collect();
        let ch: Vec<Operand> = (0..w).map(|i| m.ancilla(w + i)).collect();
        let s0: Vec<Operand> = (0..w).map(|i| m.ancilla(2 * w + i)).collect();
        let maj: Vec<Operand> = (0..w).map(|i| m.ancilla(3 * w + i)).collect();

        // Ancilla preparation: pure XOR functions of unmodified words,
        // emitted twice (here and in the custom uncompute) — applying
        // the sequence twice restores the ancilla to |0⟩.
        let prep = |m: &mut square_qir::ModuleBuilder| {
            for i in 0..w {
                // Σ1(e) = rotr(e,r1a) ⊕ rotr(e,r1b) ⊕ rotr(e,r1c)
                m.cx(e[(i + r1a) % w], s1[i]);
                m.cx(e[(i + r1b) % w], s1[i]);
                m.cx(e[(i + r1c) % w], s1[i]);
                // Ch(e,f,g) = (e ∧ f) ⊕ (¬e ∧ g)
                m.ccx(e[i], f[i], ch[i]);
                m.x(e[i]);
                m.ccx(e[i], g[i], ch[i]);
                m.x(e[i]);
                // Σ0(a)
                m.cx(a[(i + r0a) % w], s0[i]);
                m.cx(a[(i + r0b) % w], s0[i]);
                m.cx(a[(i + r0c) % w], s0[i]);
                // Maj(a,b,c) = ab ⊕ ac ⊕ bc
                m.ccx(a[i], bw[i], maj[i]);
                m.ccx(a[i], c[i], maj[i]);
                m.ccx(bw[i], c[i], maj[i]);
            }
        };
        prep(m);

        // h += Σ1(e); h += Ch; h += K_t + W_t  → h = T1
        let call_add = |m: &mut square_qir::ModuleBuilder, src: &[Operand], dst: &[Operand]| {
            let mut args = src.to_vec();
            args.extend_from_slice(dst);
            m.call(adder, &args);
        };
        call_add(m, &s1, &h);
        call_add(m, &ch, &h);
        m.call(const_add, &h);
        // d += T1  → d = e'
        call_add(m, &h, &d);
        // h += Σ0(a); h += Maj  → h = T1 + T2 = a'
        call_add(m, &s0, &h);
        call_add(m, &maj, &h);

        m.uncompute();
        prep(m);
    })
}

/// Classical reference of the same round (for differential testing).
pub fn sha2_round_reference(state: &mut [u64; 8], w: usize, round_constant: u64) {
    let m = mask(w);
    let rotr = |x: u64, r: usize| ((x >> r) | (x << (w - r))) & m;
    let ([r0a, r0b, r0c], [r1a, r1b, r1c]) = sigma_rotations(w);
    let [a, b, c, d, e, f, g, h] = *state;
    let s1 = rotr(e, r1a) ^ rotr(e, r1b) ^ rotr(e, r1c);
    let ch = (e & f) ^ (!e & g & m);
    let s0 = rotr(a, r0a) ^ rotr(a, r0b) ^ rotr(a, r0c);
    let maj = (a & b) ^ (a & c) ^ (b & c);
    let t1 = h
        .wrapping_add(s1)
        .wrapping_add(ch)
        .wrapping_add(round_constant)
        & m;
    let d_new = d.wrapping_add(t1) & m;
    let h_new = t1.wrapping_add(s0).wrapping_add(maj) & m;
    // Written back in-place (pre-rotation): h ← a', d ← e'.
    *state = [a, b, c, d_new, e, f, g, h_new];
}

/// The SHA2 benchmark program: `rounds` rounds over 8 `w`-bit words,
/// wiring the role rotation by register renaming between calls. Entry
/// register = `[state(8w), out(8w)]`.
pub fn sha2(w: usize, rounds: usize) -> Result<square_qir::Program, QirError> {
    let mut b = ProgramBuilder::new();
    let mut cache = ModuleCache::new();
    // Distinct round constants (a simple LCG stands in for the SHA-256
    // K table at arbitrary widths).
    let constants: Vec<u64> = (0..rounds)
        .scan(0x9E37_79B9u64, |st, _| {
            *st = st.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
            Some(*st & mask(w))
        })
        .collect();
    let round_mods: Vec<ModuleId> = constants
        .iter()
        .map(|&k| sha2_round(&mut b, &mut cache, w, k))
        .collect::<Result<_, _>>()?;
    let main = b.module("sha2", 0, 16 * w, |m| {
        let state: Vec<Operand> = (0..8 * w).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (0..8 * w).map(|i| m.ancilla(8 * w + i)).collect();
        // Role rotation: round t sees words in rotated order.
        for (t, rm) in round_mods.iter().enumerate() {
            let mut args = Vec::with_capacity(8 * w);
            for word in 0..8 {
                let src = (8 - (t % 8) + word) % 8;
                args.extend_from_slice(&state[src * w..(src + 1) * w]);
            }
            m.call(*rm, &args);
        }
        m.store();
        for i in 0..8 * w {
            m.cx(state[i], out[i]);
        }
    })?;
    b.finish(main)
}

/// Classical reference for [`sha2`] (same rotation-by-renaming).
pub fn sha2_reference(init: [u64; 8], w: usize, rounds: usize) -> [u64; 8] {
    let constants: Vec<u64> = (0..rounds)
        .scan(0x9E37_79B9u64, |st, _| {
            *st = st.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
            Some(*st & mask(w))
        })
        .collect();
    // Physical registers hold the state; rotation is by index map.
    let mut regs = init;
    for (t, &k) in constants.iter().enumerate() {
        // Build the logical view for this round.
        let mut view = [0u64; 8];
        for word in 0..8 {
            view[word] = regs[(8 - (t % 8) + word) % 8];
        }
        sha2_round_reference(&mut view, w, k);
        for word in 0..8 {
            regs[(8 - (t % 8) + word) % 8] = view[word];
        }
    }
    regs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_bits, to_bits};
    use square_qir::sem::run;

    fn reclaim_inner(_m: square_qir::ModuleId, depth: usize) -> bool {
        depth > 0
    }

    #[test]
    fn single_round_matches_reference() {
        let w = 8;
        let p = sha2(w, 1).unwrap();
        let init = [0x3Cu64, 0xA5, 0x0F, 0x96, 0x5A, 0xC3, 0x69, 0x81];
        let mut inputs = Vec::new();
        for v in init {
            inputs.extend(to_bits(v, w));
        }
        let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
        let expect = sha2_reference(init, w, 1);
        for (word, &want) in expect.iter().enumerate() {
            let got = from_bits(&r.outputs[8 * w + word * w..8 * w + (word + 1) * w]);
            assert_eq!(got, want, "word {word}");
        }
    }

    #[test]
    fn multi_round_matches_reference() {
        let w = 6;
        for rounds in [2usize, 5, 9] {
            let p = sha2(w, rounds).unwrap();
            let init = [1u64, 2, 3, 4, 5, 6, 7, 8].map(|v| v & mask(w));
            let mut inputs = Vec::new();
            for v in init {
                inputs.extend(to_bits(v, w));
            }
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            let expect = sha2_reference(init, w, rounds);
            for (word, &want) in expect.iter().enumerate() {
                let got = from_bits(&r.outputs[8 * w + word * w..8 * w + (word + 1) * w]);
                assert_eq!(got, want, "rounds={rounds} word={word}");
            }
        }
    }

    #[test]
    fn eager_reclamation_keeps_hygiene() {
        // Reclaiming every frame exercises the custom uncompute of the
        // round (double prep) with the dirty-ancilla check armed.
        let w = 5;
        let p = sha2(w, 3).unwrap();
        let inputs = to_bits(0b10110, w); // word `a` only; rest |0⟩
        let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
        assert!(r.gate_count > 0);
    }

    #[test]
    fn lazy_sweep_restores_everything_but_out() {
        let w = 5;
        let p = sha2(w, 2).unwrap();
        let r = run(&p, &to_bits(7, w), &mut square_qir::sem::TopLevelOnly).unwrap();
        assert_eq!(r.final_live, 16 * w, "only the entry register lives");
        // Inputs restored by the top-level sweep.
        assert_eq!(from_bits(&r.outputs[..w]), 7);
    }
}

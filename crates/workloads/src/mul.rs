//! Out-of-place controlled multiplication (MUL32 / MUL64 of Table II).
//!
//! Schoolbook shift-and-add: `s += ctl · a · b` over a `2n`-bit product
//! register, one doubly-controlled widening add per multiplier bit.
//! All partial-product temporaries are ancilla of the (deeply nested)
//! adder modules, so the multiplier exercises exactly the allocation /
//! reclamation pressure the paper's MUL benchmarks are there to
//! create.

use square_qir::{ModuleId, Operand, ProgramBuilder, QirError};

use crate::arith::{cc_add_inplace_ext, ModuleCache};

/// Controlled multiplier: params `[ctl, a(n), b(n), s(2n)]`,
/// `s += ctl·a·b (mod 2^{2n})` with `a`, `b` preserved. `s` must start
/// at |0⟩ for a plain product.
pub fn ctrl_mul(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    assert!(n >= 1, "multiplier width must be at least 1");
    // Pre-build the adders (callees must exist before the caller).
    let adders: Vec<ModuleId> = (0..n)
        .map(|i| cc_add_inplace_ext(b, cache, n, 2 * n - i))
        .collect::<Result<_, _>>()?;
    b.module(format!("cmul{n}"), 1 + 2 * n + 2 * n, 0, |m| {
        let ctl = m.param(0);
        let a: Vec<Operand> = (0..n).map(|i| m.param(1 + i)).collect();
        let x: Vec<Operand> = (0..n).map(|i| m.param(1 + n + i)).collect();
        let s: Vec<Operand> = (0..2 * n).map(|i| m.param(1 + 2 * n + i)).collect();
        for i in 0..n {
            // s[i..] += ctl · x_i · a   (operand shifted left by i)
            let mut args = vec![ctl, x[i]];
            args.extend_from_slice(&a);
            args.extend_from_slice(&s[i..]);
            m.call(adders[i], &args);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_bits, to_bits};
    use square_qir::sem::run;
    use square_qir::Program;

    fn mul_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let mut cache = ModuleCache::new();
        let mul = ctrl_mul(&mut b, &mut cache, n).unwrap();
        let total = 1 + 4 * n;
        let main = b
            .module("main", 0, total, |m| {
                let q: Vec<Operand> = (0..total).map(|i| m.ancilla(i)).collect();
                m.call(mul, &q);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn reclaim_inner(_m: square_qir::ModuleId, depth: usize) -> bool {
        depth > 0
    }

    #[test]
    fn multiplies_exhaustively_small() {
        let n = 3;
        let p = mul_program(n);
        for ctl in [0u64, 1] {
            for a in 0..(1u64 << n) {
                for x in 0..(1u64 << n) {
                    let mut inputs = vec![ctl == 1];
                    inputs.extend(to_bits(a, n));
                    inputs.extend(to_bits(x, n));
                    let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
                    let s = from_bits(&r.outputs[1 + 2 * n..1 + 4 * n]);
                    assert_eq!(s, ctl * a * x, "ctl={ctl} a={a} b={x}");
                    assert_eq!(from_bits(&r.outputs[1..1 + n]), a, "a preserved");
                    assert_eq!(from_bits(&r.outputs[1 + n..1 + 2 * n]), x, "b preserved");
                }
            }
        }
    }

    #[test]
    fn larger_width_spot_checks() {
        let n = 6;
        let p = mul_program(n);
        for (a, x) in [(63u64, 63u64), (42, 17), (0, 55), (1, 1)] {
            let mut inputs = vec![true];
            inputs.extend(to_bits(a, n));
            inputs.extend(to_bits(x, n));
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            let s = from_bits(&r.outputs[1 + 2 * n..1 + 4 * n]);
            assert_eq!(s, a * x, "a={a} b={x}");
        }
    }

    #[test]
    fn mcx_lowering_keeps_semantics() {
        // The doubly-controlled loads use 3-control MCX; lower and
        // re-check one case end to end.
        let n = 3;
        let p = mul_program(n);
        let lowered = square_qir::lower_mcx(&p);
        square_qir::validate::validate_program(&lowered).unwrap();
        let mut inputs = vec![true];
        inputs.extend(to_bits(5, n));
        inputs.extend(to_bits(7, n));
        let r = run(&lowered, &inputs, &mut reclaim_inner).unwrap();
        assert_eq!(from_bits(&r.outputs[1 + 2 * n..1 + 4 * n]), 35);
    }
}

//! Synthetic modular benchmarks: Jasmine, Elsa, Belle (Table II).
//!
//! The paper parameterizes its synthetic programs by "number of nested
//! levels, max number of callees per function, max number of input
//! qubits per function, max number of ancilla qubits per function,
//! maximum number of gates per function" with qubits and gates
//! randomly assigned (footnote 7). [`SynthParams`] carries exactly
//! those knobs plus a seed; generation is deterministic per seed.
//!
//! Generated modules follow the compute–store–uncompute discipline:
//! random gates and child calls in the compute block over the input
//! params and ancilla, one designated output param written by the
//! store block, mechanical uncompute.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use square_qir::{ModuleId, Operand, Program, ProgramBuilder, QirError};

/// The five knobs of Section V-A plus a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthParams {
    /// Nesting levels below the entry (1 = entry calls leaves).
    pub levels: usize,
    /// Maximum callees per function.
    pub max_callees: usize,
    /// Input qubits per function (excluding the output param).
    pub inputs_per_fn: usize,
    /// Maximum ancilla qubits per function.
    pub max_ancilla: usize,
    /// Maximum random gates per function (besides calls).
    pub max_gates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthParams {
    /// Jasmine: shallowly nested, moderate everything.
    pub fn jasmine() -> Self {
        SynthParams {
            levels: 3,
            max_callees: 3,
            inputs_per_fn: 8,
            max_ancilla: 6,
            max_gates: 24,
            seed: 0x7A51,
        }
    }

    /// Elsa: heavy workload, shallowly nested.
    pub fn elsa() -> Self {
        SynthParams {
            levels: 2,
            max_callees: 4,
            inputs_per_fn: 12,
            max_ancilla: 10,
            max_gates: 80,
            seed: 0xE15A,
        }
    }

    /// Belle: light workload, deeply nested.
    pub fn belle() -> Self {
        SynthParams {
            levels: 7,
            max_callees: 2,
            inputs_per_fn: 4,
            max_ancilla: 3,
            max_gates: 6,
            seed: 0xBE11E,
        }
    }

    /// Jasmine-s: small/shallow instance for ≤ 20-qubit noise runs.
    pub fn jasmine_s() -> Self {
        SynthParams {
            levels: 2,
            max_callees: 2,
            inputs_per_fn: 4,
            max_ancilla: 2,
            max_gates: 8,
            seed: 0x1A5,
        }
    }

    /// Elsa-s: small heavy/shallow instance.
    pub fn elsa_s() -> Self {
        SynthParams {
            levels: 1,
            max_callees: 2,
            inputs_per_fn: 5,
            max_ancilla: 3,
            max_gates: 14,
            seed: 0xE15,
        }
    }

    /// Belle-s: small light/deep instance.
    pub fn belle_s() -> Self {
        SynthParams {
            levels: 3,
            max_callees: 1,
            inputs_per_fn: 3,
            max_ancilla: 2,
            max_gates: 4,
            seed: 0xBE1,
        }
    }
}

/// Operand discipline of generated compute blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Discipline {
    /// Gates and call outputs may target params freely (the paper's
    /// literal "randomly assigned" reading). Such programs can be
    /// *policy-divergent*: a frame that skips uncomputation leaves its
    /// param scribbles visible to the caller's later gates.
    Free,
    /// Gates only ever *write* a frame's own ancillas, and a call's
    /// designated output param is always bound to a caller ancilla.
    /// Under this discipline reclaim decisions are unobservable, so
    /// every policy computes identical inputs-echo and output bits —
    /// the invariant the pipeline fuzzer cross-checks.
    Clean,
}

/// Generates the synthetic program for `params`. The entry register is
/// `[x(inputs_per_fn), scratch, out]`; inputs feed the top call chain
/// and the result lands in `out` via the entry's store.
pub fn synthesize(params: &SynthParams) -> Result<Program, QirError> {
    synthesize_with(params, Discipline::Free)
}

/// Like [`synthesize`], but generated compute blocks follow the
/// write-discipline of the hand-written benchmarks: gates only write
/// the frame's own ancillas and call outputs land in caller ancillas.
/// The resulting programs compute the same observable function under
/// *every* reclamation policy, which makes them the right substrate
/// for cross-policy differential testing. Uses the identical RNG
/// stream as [`synthesize`] (only the operand-role assignment
/// differs), so a seed corresponds to the same program shape in both
/// modes.
pub fn synthesize_disciplined(params: &SynthParams) -> Result<Program, QirError> {
    synthesize_with(params, Discipline::Clean)
}

fn synthesize_with(params: &SynthParams, discipline: Discipline) -> Result<Program, QirError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = ProgramBuilder::new();
    let p_in = params.inputs_per_fn.max(2);
    let anc = params.max_ancilla.max(2);

    // Build bottom-up: level `levels` are leaves.
    let mut below: Vec<ModuleId> = Vec::new();
    for level in (1..=params.levels).rev() {
        let fan = params.max_callees.max(1);
        let mut this_level = Vec::with_capacity(fan);
        for idx in 0..fan {
            let callees = below.clone();
            let id = gen_module(
                &mut b,
                &mut rng,
                &format!("syn_l{level}_{idx}"),
                p_in,
                anc,
                params.max_gates,
                &callees,
                params.max_callees,
                discipline,
            )?;
            this_level.push(id);
        }
        below = this_level;
    }
    // Entry: calls one top-level module, stores its output.
    let top = below[rng.gen_range(0..below.len())];
    let total = p_in + 2; // inputs + scratch out + final out
    let main = b.module("synthetic_main", 0, total, |m| {
        let x: Vec<Operand> = (0..p_in).map(|i| m.ancilla(i)).collect();
        let scratch = m.ancilla(p_in);
        let out = m.ancilla(p_in + 1);
        let mut args = x.clone();
        args.push(scratch);
        m.call(top, &args);
        m.store();
        m.cx(scratch, out);
    })?;
    b.finish(main)
}

/// One random module: params = `p_in` inputs + 1 output; `anc`
/// ancilla; compute = interleaved random gates and child calls; store
/// = XOR-copy of one ancilla into the output param.
#[allow(clippy::too_many_arguments)]
fn gen_module(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    name: &str,
    p_in: usize,
    anc: usize,
    max_gates: usize,
    callees: &[ModuleId],
    max_callees: usize,
    discipline: Discipline,
) -> Result<ModuleId, QirError> {
    let gates = rng.gen_range(max_gates / 2..=max_gates.max(1));
    let calls = if callees.is_empty() {
        0
    } else {
        rng.gen_range(1..=max_callees.max(1))
    };
    // Pre-draw randomness so the builder closure stays deterministic.
    let mut plan: Vec<PlanItem> = Vec::new();
    for _ in 0..gates {
        plan.push(PlanItem::Gate(rng.gen_range(0..3u8), rng.gen::<u64>()));
    }
    for _ in 0..calls {
        let callee = callees[rng.gen_range(0..callees.len())];
        plan.push(PlanItem::Call(callee, rng.gen::<u64>()));
    }
    plan.shuffle(rng);

    b.module(name, p_in + 1, anc, |m| {
        // Operand pool for compute: inputs + ancilla (never the output).
        let mut pool: Vec<Operand> = Vec::with_capacity(p_in + anc);
        for i in 0..p_in {
            pool.push(m.param(i));
        }
        for i in 0..anc {
            pool.push(m.ancilla(i));
        }
        let out = m.param(p_in);
        let pick = |mix: u64, k: usize, n: usize| -> Vec<usize> {
            // k distinct indices below n, derived from the fixed mix.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut state = mix | 1;
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        };
        // Under the clean discipline, the *written* operand (a gate's
        // target, a call's output param — always the last chosen
        // index) is forced into the ancilla region of the pool: swap
        // an already-chosen ancilla into place, or overwrite with a
        // mix-derived ancilla (no collision possible — the others are
        // then all params).
        let force_ancilla_last = |chosen: &mut Vec<usize>, mix: u64| {
            if discipline == Discipline::Free {
                return;
            }
            let last = chosen.len() - 1;
            match chosen.iter().rposition(|&i| i >= p_in) {
                Some(pos) => chosen.swap(pos, last),
                None => chosen[last] = p_in + (mix >> 17) as usize % anc,
            }
        };
        for item in &plan {
            match item {
                PlanItem::Gate(kind, mix) => {
                    let need = (*kind as usize + 1).min(pool.len());
                    let mut chosen = pick(*mix, need, pool.len());
                    force_ancilla_last(&mut chosen, *mix);
                    match need {
                        1 => m.x(pool[chosen[0]]),
                        2 => m.cx(pool[chosen[0]], pool[chosen[1]]),
                        _ => m.ccx(pool[chosen[0]], pool[chosen[1]], pool[chosen[2]]),
                    }
                }
                PlanItem::Call(callee, mix) => {
                    // Child signature is p_in inputs + 1 output; feed it
                    // distinct pool qubits, output into an ancilla.
                    let mut chosen = pick(*mix, p_in + 1, pool.len());
                    force_ancilla_last(&mut chosen, *mix);
                    let args: Vec<Operand> = chosen.iter().map(|&i| pool[i]).collect();
                    m.call(*callee, &args);
                }
            }
        }
        m.store();
        // The last ancilla feeds the output (ancilla never equal out).
        m.cx(pool[p_in + anc - 1], out);
    })
}

#[derive(Debug, Clone, Copy)]
enum PlanItem {
    Gate(u8, u64),
    Call(ModuleId, u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_qir::analysis::ProgramStats;
    use square_qir::sem::{run, AlwaysReclaim, NeverReclaim, TopLevelOnly};

    #[test]
    fn all_presets_generate_valid_programs() {
        for params in [
            SynthParams::jasmine(),
            SynthParams::elsa(),
            SynthParams::belle(),
            SynthParams::jasmine_s(),
            SynthParams::elsa_s(),
            SynthParams::belle_s(),
        ] {
            let p = synthesize(&params).unwrap();
            square_qir::validate::validate_program(&p).unwrap();
            let stats = ProgramStats::analyze(&p);
            let entry = stats.module(p.entry());
            assert!(entry.gates_forward() > 0, "{params:?}");
            assert_eq!(entry.height, params.levels, "{params:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthesize(&SynthParams::belle_s()).unwrap();
        let b = synthesize(&SynthParams::belle_s()).unwrap();
        let ra = run(&a, &[true, false, true], &mut AlwaysReclaim).unwrap();
        let rb = run(&b, &[true, false, true], &mut AlwaysReclaim).unwrap();
        assert_eq!(ra.outputs, rb.outputs);
        assert_eq!(ra.gate_count, rb.gate_count);
    }

    #[test]
    fn policies_agree_on_outputs_and_hygiene() {
        for params in [
            SynthParams::jasmine_s(),
            SynthParams::elsa_s(),
            SynthParams::belle_s(),
        ] {
            let p = synthesize(&params).unwrap();
            let inputs: Vec<bool> = (0..params.inputs_per_fn.max(2))
                .map(|i| i % 2 == 0)
                .collect();
            let eager = run(&p, &inputs, &mut AlwaysReclaim).unwrap();
            let lazy = run(&p, &inputs, &mut TopLevelOnly).unwrap();
            let never = run(&p, &inputs, &mut NeverReclaim).unwrap();
            let out = inputs.len() + 1;
            assert_eq!(eager.outputs[out], lazy.outputs[out], "{params:?}");
            assert_eq!(eager.outputs[out], never.outputs[out], "{params:?}");
            assert!(eager.peak_live <= never.peak_live, "{params:?}");
        }
    }

    #[test]
    fn disciplined_programs_are_policy_invariant() {
        // Under the clean write-discipline, the echoed inputs and the
        // store-protected output agree across *every* reclamation
        // pattern — including adversarial per-frame mixtures. The free
        // generator gives no such guarantee (a frame that skips
        // uncomputation leaves its param scribbles visible), which is
        // exactly why the fuzzer's differential check uses this mode.
        for seed in [1u64, 7, 9612741360521087737] {
            let params = SynthParams {
                levels: 2,
                max_callees: 2,
                inputs_per_fn: 2,
                max_ancilla: 3,
                max_gates: 4,
                seed,
            };
            let p = synthesize_disciplined(&params).unwrap();
            square_qir::validate::validate_program(&p).unwrap();
            let inputs = [false, true];
            let reference = run(&p, &inputs, &mut AlwaysReclaim).unwrap();
            let out = inputs.len() + 1;
            let mut flip = false;
            let mut mixed = |_m: square_qir::ModuleId, _d: usize| {
                flip = !flip;
                flip
            };
            for r in [
                run(&p, &inputs, &mut TopLevelOnly).unwrap(),
                run(&p, &inputs, &mut NeverReclaim).unwrap(),
                run(&p, &inputs, &mut mixed).unwrap(),
            ] {
                assert_eq!(r.outputs[out], reference.outputs[out], "seed {seed}");
                assert_eq!(
                    &r.outputs[..inputs.len()],
                    &reference.outputs[..inputs.len()],
                    "seed {seed}: inputs echo"
                );
            }
        }
    }

    #[test]
    fn free_and_disciplined_modes_share_program_shape() {
        // Same seed → same module count and call structure; only the
        // operand roles differ.
        let params = SynthParams::belle_s();
        let free = synthesize(&params).unwrap();
        let clean = synthesize_disciplined(&params).unwrap();
        let sf = ProgramStats::analyze(&free);
        let sc = ProgramStats::analyze(&clean);
        assert_eq!(
            sf.module(free.entry()).height,
            sc.module(clean.entry()).height
        );
        assert_eq!(
            sf.module(free.entry()).gates_compute,
            sc.module(clean.entry()).gates_compute
        );
    }

    #[test]
    fn deep_nesting_blows_up_eager_gate_count() {
        let p = synthesize(&SynthParams::belle()).unwrap();
        let eager = run(&p, &[], &mut AlwaysReclaim).unwrap();
        let lazy = run(&p, &[], &mut TopLevelOnly).unwrap();
        assert!(
            eager.gate_count > lazy.gate_count,
            "recursive recomputation on deep nesting: {} vs {}",
            eager.gate_count,
            lazy.gate_count
        );
    }

    #[test]
    fn small_variants_fit_noise_simulation_budget() {
        for params in [
            SynthParams::jasmine_s(),
            SynthParams::elsa_s(),
            SynthParams::belle_s(),
        ] {
            let p = synthesize(&params).unwrap();
            let r = run(&p, &[], &mut NeverReclaim).unwrap();
            assert!(
                r.peak_live <= 20,
                "{params:?} peaks at {} qubits",
                r.peak_live
            );
        }
    }
}

//! Named benchmark registry (Table II of the paper).
//!
//! [`Benchmark`] enumerates every program in the paper's evaluation;
//! [`build`] constructs it at the default size used by the experiment
//! harness. The NISQ set (first seven) fits in ≤ 20 qubits for noise
//! simulation; the medium/large set targets the hundreds-to-thousands
//! qubit regime of Figs. 9 and 10.

use square_qir::{Program, QirError};

use crate::arith::{ctrl_add_out, ModuleCache};
use crate::logic;
use crate::modexp::{modexp, ModexpSpec};
use crate::mul::ctrl_mul;
use crate::salsa20::salsa20;
use crate::sha2::sha2;
use crate::synthetic::{synthesize, SynthParams};
use square_qir::{Operand, ProgramBuilder};

/// Every benchmark of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Input weight function, 5 inputs / 3 outputs.
    Rd53,
    /// Symmetric function, 6 inputs / 1 output (weight ∈ {2,3,4}).
    Sym6,
    /// Exactly-two-of-five detector.
    TwoOf5,
    /// 4-bit controlled addition.
    Adder4,
    /// Small shallow synthetic instance.
    JasmineS,
    /// Small heavy synthetic instance.
    ElsaS,
    /// Small deep synthetic instance.
    BelleS,
    /// 32-bit controlled addition.
    Adder32,
    /// 64-bit controlled addition.
    Adder64,
    /// 32-bit out-of-place controlled multiplier.
    Mul32,
    /// 64-bit out-of-place controlled multiplier.
    Mul64,
    /// Modular exponentiation (Shor's arithmetic core).
    Modexp,
    /// SHA-2 compression rounds.
    Sha2,
    /// Salsa20 core rounds.
    Salsa20,
    /// Shallowly nested synthetic benchmark.
    Jasmine,
    /// Heavy, shallowly nested synthetic benchmark.
    Elsa,
    /// Light, deeply nested synthetic benchmark.
    Belle,
}

impl Benchmark {
    /// The seven NISQ benchmarks of Table III / Fig. 8 (≤ 20 qubits).
    pub const NISQ: [Benchmark; 7] = [
        Benchmark::Rd53,
        Benchmark::Sym6,
        Benchmark::TwoOf5,
        Benchmark::Adder4,
        Benchmark::JasmineS,
        Benchmark::ElsaS,
        Benchmark::BelleS,
    ];

    /// The ten medium/large benchmarks of Figs. 9 and 10.
    pub const MEDIUM: [Benchmark; 10] = [
        Benchmark::Adder32,
        Benchmark::Adder64,
        Benchmark::Mul32,
        Benchmark::Mul64,
        Benchmark::Modexp,
        Benchmark::Sha2,
        Benchmark::Salsa20,
        Benchmark::Jasmine,
        Benchmark::Elsa,
        Benchmark::Belle,
    ];

    /// Every benchmark of Table II: the NISQ set followed by the
    /// medium/large set.
    pub const ALL: [Benchmark; 17] = [
        Benchmark::Rd53,
        Benchmark::Sym6,
        Benchmark::TwoOf5,
        Benchmark::Adder4,
        Benchmark::JasmineS,
        Benchmark::ElsaS,
        Benchmark::BelleS,
        Benchmark::Adder32,
        Benchmark::Adder64,
        Benchmark::Mul32,
        Benchmark::Mul64,
        Benchmark::Modexp,
        Benchmark::Sha2,
        Benchmark::Salsa20,
        Benchmark::Jasmine,
        Benchmark::Elsa,
        Benchmark::Belle,
    ];

    /// Looks a benchmark up by its table name, case-insensitively
    /// (`"rd53"`, `"ADDER4"`, `"jasmine-s"`, ...).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Rd53 => "RD53",
            Benchmark::Sym6 => "6SYM",
            Benchmark::TwoOf5 => "2OF5",
            Benchmark::Adder4 => "ADDER4",
            Benchmark::JasmineS => "Jasmine-s",
            Benchmark::ElsaS => "Elsa-s",
            Benchmark::BelleS => "Belle-s",
            Benchmark::Adder32 => "ADDER32",
            Benchmark::Adder64 => "ADDER64",
            Benchmark::Mul32 => "MUL32",
            Benchmark::Mul64 => "MUL64",
            Benchmark::Modexp => "MODEXP",
            Benchmark::Sha2 => "SHA2",
            Benchmark::Salsa20 => "SALSA20",
            Benchmark::Jasmine => "Jasmine",
            Benchmark::Elsa => "Elsa",
            Benchmark::Belle => "Belle",
        }
    }

    /// Number of entry qubits meaningfully used as inputs (for noise
    /// simulation input preparation).
    pub fn input_qubits(&self) -> usize {
        match self {
            Benchmark::Rd53 => 5,
            Benchmark::Sym6 => 6,
            Benchmark::TwoOf5 => 5,
            Benchmark::Adder4 => 9,
            Benchmark::JasmineS => 4,
            Benchmark::ElsaS => 5,
            Benchmark::BelleS => 3,
            Benchmark::Adder32 => 65,
            Benchmark::Adder64 => 129,
            Benchmark::Mul32 => 65,
            Benchmark::Mul64 => 129,
            Benchmark::Modexp => 8,
            Benchmark::Sha2 => 64,
            Benchmark::Salsa20 => 128,
            Benchmark::Jasmine => 8,
            Benchmark::Elsa => 12,
            Benchmark::Belle => 4,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// File stem for the benchmark's `.sq` dump (`squarec --dump-catalog`):
/// the table name lowercased, e.g. `RD53` → `rd53.sq`,
/// `Jasmine-s` → `jasmine-s.sq`.
pub fn sq_file_stem(bench: Benchmark) -> String {
    bench.name().to_lowercase()
}

/// The benchmark rendered as canonical `.sq` source (parseable back to
/// the identical program by `square-lang`).
///
/// # Errors
///
/// Propagates IR validation failures from [`build`] (none occur for
/// the shipped generators).
pub fn sq_source(bench: Benchmark) -> Result<String, QirError> {
    Ok(square_qir::pretty::program_listing(&build(bench)?))
}

/// Builds the benchmark at its default evaluation size.
///
/// # Errors
///
/// Propagates IR validation failures (none occur for the shipped
/// generators; the `Result` keeps the API honest).
pub fn build(bench: Benchmark) -> Result<Program, QirError> {
    match bench {
        Benchmark::Rd53 => logic::rd53(),
        Benchmark::Sym6 => logic::sym6(),
        Benchmark::TwoOf5 => logic::two_of_five(),
        Benchmark::Adder4 => adder_program(4),
        Benchmark::JasmineS => synthesize(&SynthParams::jasmine_s()),
        Benchmark::ElsaS => synthesize(&SynthParams::elsa_s()),
        Benchmark::BelleS => synthesize(&SynthParams::belle_s()),
        Benchmark::Adder32 => adder_program(32),
        Benchmark::Adder64 => adder_program(64),
        Benchmark::Mul32 => mul_program(32),
        Benchmark::Mul64 => mul_program(64),
        Benchmark::Modexp => modexp_program(ModexpSpec { n: 8, k: 8, g: 7 }),
        Benchmark::Sha2 => sha2(16, 12),
        Benchmark::Salsa20 => salsa20(8, 8),
        Benchmark::Jasmine => synthesize(&SynthParams::jasmine()),
        Benchmark::Elsa => synthesize(&SynthParams::elsa()),
        Benchmark::Belle => synthesize(&SynthParams::belle()),
    }
}

/// ADDERn: entry `[ctl, a(n), b(n), scratch(n+1), out(n+1)]`; a
/// controlled out-of-place addition with the result copied out by the
/// entry's store block.
pub fn adder_program(n: usize) -> Result<Program, QirError> {
    let mut b = ProgramBuilder::new();
    let mut cache = ModuleCache::new();
    let adder = ctrl_add_out(&mut b, &mut cache, n)?;
    let total = 1 + 2 * n + 2 * (n + 1);
    let main = b.module(format!("adder{n}"), 0, total, |m| {
        let q: Vec<Operand> = (0..1 + 3 * n + 1).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (0..=n).map(|i| m.ancilla(1 + 3 * n + 1 + i)).collect();
        m.call(adder, &q);
        m.store();
        for i in 0..=n {
            m.cx(q[1 + 2 * n + i], out[i]);
        }
    })?;
    b.finish(main)
}

/// MULn: entry `[ctl, a(n), b(n), scratch(2n), out(2n)]`; controlled
/// product accumulated into scratch, copied out by the entry store.
pub fn mul_program(n: usize) -> Result<Program, QirError> {
    let mut b = ProgramBuilder::new();
    let mut cache = ModuleCache::new();
    let mul = ctrl_mul(&mut b, &mut cache, n)?;
    let args = 1 + 2 * n + 2 * n;
    let total = args + 2 * n;
    let main = b.module(format!("mul{n}"), 0, total, |m| {
        let q: Vec<Operand> = (0..args).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (0..2 * n).map(|i| m.ancilla(args + i)).collect();
        m.call(mul, &q);
        m.store();
        for i in 0..2 * n {
            m.cx(q[1 + 2 * n + i], out[i]);
        }
    })?;
    b.finish(main)
}

/// MODEXP: entry `[e(k), scratch(n), out(n)]`.
pub fn modexp_program(spec: ModexpSpec) -> Result<Program, QirError> {
    let mut b = ProgramBuilder::new();
    let mut cache = ModuleCache::new();
    let me = modexp(&mut b, &mut cache, spec)?;
    let total = spec.k + 2 * spec.n;
    let main = b.module("modexp_main", 0, total, |m| {
        let q: Vec<Operand> = (0..spec.k + spec.n).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (0..spec.n)
            .map(|i| m.ancilla(spec.k + spec.n + i))
            .collect();
        m.call(me, &q);
        m.store();
        for i in 0..spec.n {
            m.cx(q[spec.k + i], out[i]);
        }
    })?;
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_qir::analysis::ProgramStats;
    use square_qir::sem::{run, NeverReclaim};

    #[test]
    fn every_benchmark_builds_and_validates() {
        for bench in Benchmark::NISQ.iter().chain(Benchmark::MEDIUM.iter()) {
            let p = build(*bench).unwrap_or_else(|_| panic!("{}", bench.name()));
            square_qir::validate::validate_program(&p)
                .unwrap_or_else(|_| panic!("{}", bench.name()));
            let stats = ProgramStats::analyze(&p);
            assert!(
                stats.module(p.entry()).gates_forward() > 0,
                "{bench}: no gates"
            );
        }
    }

    #[test]
    fn nisq_benchmarks_fit_small_machines() {
        // The paper's NISQ set stays under 20 qubits; ours carries an
        // explicit output register per benchmark (so every policy
        // computes the same observable function), which adds a few
        // qubits — everything still fits a 5×5 lattice.
        for bench in Benchmark::NISQ {
            let p = build(bench).unwrap();
            let r = run(&p, &[], &mut NeverReclaim).unwrap();
            assert!(r.peak_live <= 24, "{bench}: peaks at {}", r.peak_live);
        }
    }

    #[test]
    fn adder_program_adds() {
        use crate::arith::{from_bits, to_bits};
        let n = 4;
        let p = adder_program(n).unwrap();
        let mut inputs = vec![true];
        inputs.extend(to_bits(11, n));
        inputs.extend(to_bits(9, n));
        let mut oracle = |_m: square_qir::ModuleId, d: usize| d > 0;
        let r = run(&p, &inputs, &mut oracle).unwrap();
        let out_base = 1 + 3 * n + 1;
        assert_eq!(from_bits(&r.outputs[out_base..out_base + n + 1]), 20);
    }

    #[test]
    fn medium_benchmarks_have_nontrivial_depth() {
        for bench in [Benchmark::Modexp, Benchmark::Sha2, Benchmark::Salsa20] {
            let p = build(bench).unwrap();
            let stats = ProgramStats::analyze(&p);
            assert!(
                stats.module(p.entry()).height >= 2,
                "{bench}: call depth {}",
                stats.module(p.entry()).height
            );
        }
    }

    #[test]
    fn from_name_finds_every_benchmark() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
        // Element-wise, not just by length: ALL must stay exactly
        // NISQ followed by MEDIUM or from_name silently misses
        // benchmarks.
        assert!(
            Benchmark::NISQ
                .iter()
                .chain(Benchmark::MEDIUM.iter())
                .eq(Benchmark::ALL.iter()),
            "Benchmark::ALL drifted from NISQ ++ MEDIUM"
        );
    }

    #[test]
    fn sq_exports_have_unique_stems_and_parse_headers() {
        let mut stems: Vec<String> = Benchmark::ALL.iter().map(|b| sq_file_stem(*b)).collect();
        stems.sort_unstable();
        stems.dedup();
        assert_eq!(stems.len(), 17, "file stems collide");
        let src = sq_source(Benchmark::Rd53).unwrap();
        assert!(src.contains("entry module rd53("), "{src}");
        assert!(src.trim_end().ends_with('}'));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::NISQ
            .iter()
            .chain(Benchmark::MEDIUM.iter())
            .map(|b| b.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }
}

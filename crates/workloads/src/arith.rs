//! Reversible addition primitives (the Cuccaro-based substrate of the
//! paper's arithmetic benchmarks, footnote 3).
//!
//! Three families:
//!
//! * [`cuccaro_add`] — the CDKM ripple-carry adder: in-place
//!   `b += a (mod 2^n)` with a single borrowed ancilla that returns to
//!   |0⟩ by construction (its uncompute block is empty).
//! * [`ripple_add_out`] / [`ctrl_add_out`] — Bennett-form out-of-place
//!   adders: a carry register is computed (ancilla), the sum is stored
//!   to a fresh register, and the carries are mechanically uncomputed.
//!   These are the modules whose ancilla SQUARE manages.
//! * [`ctrl_add_inplace`] / [`cc_add_inplace`] / [`const_add_inplace`]
//!   — in-place controlled additions via *operand loading*: a temp
//!   register `t = ctrl·a` is computed, an uncontrolled in-place add
//!   runs, and a custom uncompute unloads `t` (without undoing the
//!   addition).

use std::collections::HashMap;

use square_qir::{ModuleId, Operand, ProgramBuilder, QirError};

/// Memoizes generated arithmetic modules per (kind, width) so shared
/// subcircuits appear once in the program (as ScaffCC's function
/// cloning would after deduplication).
#[derive(Debug, Default)]
pub struct ModuleCache {
    map: HashMap<(&'static str, usize, u64), ModuleId>,
}

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn get_or_insert(
        &mut self,
        key: (&'static str, usize, u64),
        build: impl FnOnce() -> Result<ModuleId, QirError>,
    ) -> Result<ModuleId, QirError> {
        if let Some(id) = self.map.get(&key) {
            return Ok(*id);
        }
        let id = build()?;
        self.map.insert(key, id);
        Ok(id)
    }
}

/// In-place CDKM (Cuccaro) adder: params `[a(n), b(n)]`,
/// `b ← a + b (mod 2^n)`, `a` preserved. One ancilla (the ripple
/// seed), restored to |0⟩ by the circuit itself — the module carries
/// an *empty* uncompute block, so reclaiming it costs zero gates.
pub fn cuccaro_add(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    assert!(n >= 1, "adder width must be at least 1");
    cache.get_or_insert(("cuccaro", n, 0), || {
        b.module(format!("add{n}"), 2 * n, 1, |m| {
            let a: Vec<Operand> = (0..n).map(|i| m.param(i)).collect();
            let s: Vec<Operand> = (0..n).map(|i| m.param(n + i)).collect();
            let c = m.ancilla(0);
            // MAJ(x, y, z): y ^= z; x ^= z; z ^= x·y
            let maj = |m: &mut square_qir::ModuleBuilder, x, y, z| {
                m.cx(z, y);
                m.cx(z, x);
                m.ccx(x, y, z);
            };
            // UMA(x, y, z): z ^= x·y; x ^= z; y ^= x
            let uma = |m: &mut square_qir::ModuleBuilder, x, y, z| {
                m.ccx(x, y, z);
                m.cx(z, x);
                m.cx(x, y);
            };
            maj(m, c, s[0], a[0]);
            for i in 1..n {
                maj(m, a[i - 1], s[i], a[i]);
            }
            for i in (1..n).rev() {
                uma(m, a[i - 1], s[i], a[i]);
            }
            uma(m, c, s[0], a[0]);
            // The ripple ancilla is already |0⟩: reclaiming is free.
            m.uncompute();
        })
    })
}

/// Out-of-place ripple adder: params `[a(n), b(n), s(n+1)]`,
/// `s ← a + b` with full carry-out; `a`, `b` preserved. The `n` carry
/// ancillas follow the Bennett discipline (computed, read by the
/// store, mechanically uncomputed) — the canonical module SQUARE's
/// heuristics operate on.
pub fn ripple_add_out(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    assert!(n >= 1, "adder width must be at least 1");
    cache.get_or_insert(("ripple_out", n, 0), || {
        b.module(format!("addout{n}"), 3 * n + 1, n, |m| {
            let a: Vec<Operand> = (0..n).map(|i| m.param(i)).collect();
            let x: Vec<Operand> = (0..n).map(|i| m.param(n + i)).collect();
            let s: Vec<Operand> = (0..=n).map(|i| m.param(2 * n + i)).collect();
            // c[i] = carry into bit i+1.
            let c: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            // carry_{i+1} = maj(a_i, x_i, carry_i) = a·x ⊕ a·c ⊕ x·c
            m.ccx(a[0], x[0], c[0]);
            for i in 1..n {
                m.ccx(a[i], x[i], c[i]);
                m.ccx(a[i], c[i - 1], c[i]);
                m.ccx(x[i], c[i - 1], c[i]);
            }
            m.store();
            // s_i = a_i ⊕ x_i ⊕ carry_i
            m.cx(a[0], s[0]);
            m.cx(x[0], s[0]);
            for i in 1..n {
                m.cx(a[i], s[i]);
                m.cx(x[i], s[i]);
                m.cx(c[i - 1], s[i]);
            }
            m.cx(c[n - 1], s[n]);
        })
    })
}

/// Controlled out-of-place adder: params `[ctl, a(n), b(n), s(n+1)]`,
/// `s ← ctl · (a + b)`. Carries are computed unconditionally (and
/// uncomputed); only the stored sum is controlled.
pub fn ctrl_add_out(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    assert!(n >= 1, "adder width must be at least 1");
    cache.get_or_insert(("ctrl_out", n, 0), || {
        b.module(format!("caddout{n}"), 3 * n + 2, n, |m| {
            let ctl = m.param(0);
            let a: Vec<Operand> = (0..n).map(|i| m.param(1 + i)).collect();
            let x: Vec<Operand> = (0..n).map(|i| m.param(1 + n + i)).collect();
            let s: Vec<Operand> = (0..=n).map(|i| m.param(1 + 2 * n + i)).collect();
            let c: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            m.ccx(a[0], x[0], c[0]);
            for i in 1..n {
                m.ccx(a[i], x[i], c[i]);
                m.ccx(a[i], c[i - 1], c[i]);
                m.ccx(x[i], c[i - 1], c[i]);
            }
            m.store();
            m.ccx(ctl, a[0], s[0]);
            m.ccx(ctl, x[0], s[0]);
            for i in 1..n {
                m.ccx(ctl, a[i], s[i]);
                m.ccx(ctl, x[i], s[i]);
                m.ccx(ctl, c[i - 1], s[i]);
            }
            m.ccx(ctl, c[n - 1], s[n]);
        })
    })
}

/// In-place controlled adder: params `[ctl, a(n), b(n)]`,
/// `b += ctl · a (mod 2^n)`. Implemented by loading `t = ctl·a` into a
/// temp register, running the uncontrolled in-place adder, and
/// unloading `t` in a custom uncompute block (the addition itself is
/// *not* undone — only the operand register is cleaned).
pub fn ctrl_add_inplace(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    let adder = cuccaro_add(b, cache, n)?;
    cache.get_or_insert(("ctrl_inplace", n, 0), || {
        b.module(format!("cadd{n}"), 2 * n + 1, n, |m| {
            let ctl = m.param(0);
            let a: Vec<Operand> = (0..n).map(|i| m.param(1 + i)).collect();
            let s: Vec<Operand> = (0..n).map(|i| m.param(1 + n + i)).collect();
            let t: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            for i in 0..n {
                m.ccx(ctl, a[i], t[i]);
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for i in 0..n {
                m.ccx(ctl, a[i], t[i]);
            }
        })
    })
}

/// Doubly-controlled in-place adder: params `[c0, c1, a(n), b(n)]`,
/// `b += c0·c1·a (mod 2^n)`. The operand load uses 3-control MCX
/// gates, which the compiler lowers to Toffoli V-chains with their own
/// managed ancilla.
pub fn cc_add_inplace(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
) -> Result<ModuleId, QirError> {
    let adder = cuccaro_add(b, cache, n)?;
    cache.get_or_insert(("cc_inplace", n, 0), || {
        b.module(format!("ccadd{n}"), 2 * n + 2, n, |m| {
            let c0 = m.param(0);
            let c1 = m.param(1);
            let a: Vec<Operand> = (0..n).map(|i| m.param(2 + i)).collect();
            let s: Vec<Operand> = (0..n).map(|i| m.param(2 + n + i)).collect();
            let t: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            for i in 0..n {
                m.mcx(&[c0, c1, a[i]], t[i]);
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for i in 0..n {
                m.mcx(&[c0, c1, a[i]], t[i]);
            }
        })
    })
}

/// In-place constant adder: params `[b(n)]`, `b += k (mod 2^n)` for a
/// compile-time constant `k`. The constant is loaded into a temp
/// register with X gates, added in place, and unloaded.
pub fn const_add_inplace(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
    k: u64,
) -> Result<ModuleId, QirError> {
    let k = k & mask(n);
    let adder = cuccaro_add(b, cache, n)?;
    cache.get_or_insert(("const_inplace", n, k), || {
        b.module(format!("kadd{n}_{k:x}"), n, n, |m| {
            let s: Vec<Operand> = (0..n).map(|i| m.param(i)).collect();
            let t: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            for (i, ti) in t.iter().enumerate() {
                if k >> i & 1 == 1 {
                    m.x(*ti);
                }
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for (i, ti) in t.iter().enumerate() {
                if k >> i & 1 == 1 {
                    m.x(*ti);
                }
            }
        })
    })
}

/// Controlled in-place constant adder: params `[ctl, b(n)]`,
/// `b += ctl·k (mod 2^n)`.
pub fn ctrl_const_add_inplace(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    n: usize,
    k: u64,
) -> Result<ModuleId, QirError> {
    let k = k & mask(n);
    let adder = cuccaro_add(b, cache, n)?;
    cache.get_or_insert(("ctrl_const_inplace", n, k), || {
        b.module(format!("ckadd{n}_{k:x}"), n + 1, n, |m| {
            let ctl = m.param(0);
            let s: Vec<Operand> = (0..n).map(|i| m.param(1 + i)).collect();
            let t: Vec<Operand> = (0..n).map(|i| m.ancilla(i)).collect();
            for (i, ti) in t.iter().enumerate() {
                if k >> i & 1 == 1 {
                    m.cx(ctl, *ti);
                }
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for (i, ti) in t.iter().enumerate() {
                if k >> i & 1 == 1 {
                    m.cx(ctl, *ti);
                }
            }
        })
    })
}

/// In-place controlled adder with widening: params
/// `[ctl, a(na), b(nb)]` with `nb ≥ na`, `b += ctl · a (mod 2^nb)`.
/// The operand register is zero-extended inside the temp load, so
/// carries propagate through the full target width — the building
/// block for shifted multiply-accumulate.
pub fn ctrl_add_inplace_ext(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    na: usize,
    nb: usize,
) -> Result<ModuleId, QirError> {
    assert!(na >= 1 && nb >= na, "need nb >= na >= 1");
    let adder = cuccaro_add(b, cache, nb)?;
    cache.get_or_insert(("ctrl_inplace_ext", na, nb as u64), || {
        b.module(format!("cadd{na}_{nb}"), na + nb + 1, nb, |m| {
            let ctl = m.param(0);
            let a: Vec<Operand> = (0..na).map(|i| m.param(1 + i)).collect();
            let s: Vec<Operand> = (0..nb).map(|i| m.param(1 + na + i)).collect();
            let t: Vec<Operand> = (0..nb).map(|i| m.ancilla(i)).collect();
            for i in 0..na {
                m.ccx(ctl, a[i], t[i]);
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for i in 0..na {
                m.ccx(ctl, a[i], t[i]);
            }
        })
    })
}

/// Doubly-controlled widening adder: params `[c0, c1, a(na), b(nb)]`,
/// `b += c0·c1·a (mod 2^nb)`.
pub fn cc_add_inplace_ext(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    na: usize,
    nb: usize,
) -> Result<ModuleId, QirError> {
    assert!(na >= 1 && nb >= na, "need nb >= na >= 1");
    let adder = cuccaro_add(b, cache, nb)?;
    cache.get_or_insert(("cc_inplace_ext", na, nb as u64), || {
        b.module(format!("ccadd{na}_{nb}"), na + nb + 2, nb, |m| {
            let c0 = m.param(0);
            let c1 = m.param(1);
            let a: Vec<Operand> = (0..na).map(|i| m.param(2 + i)).collect();
            let s: Vec<Operand> = (0..nb).map(|i| m.param(2 + na + i)).collect();
            let t: Vec<Operand> = (0..nb).map(|i| m.ancilla(i)).collect();
            for i in 0..na {
                m.mcx(&[c0, c1, a[i]], t[i]);
            }
            let mut args = t.clone();
            args.extend_from_slice(&s);
            m.call(adder, &args);
            m.uncompute();
            for i in 0..na {
                m.mcx(&[c0, c1, a[i]], t[i]);
            }
        })
    })
}

/// Low `n`-bit mask.
pub fn mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Packs the low `n` bits of `v` into booleans, LSB first.
pub fn to_bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| v >> i & 1 == 1).collect()
}

/// Unpacks LSB-first booleans into an integer.
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_qir::sem::{run, TopLevelOnly};
    use square_qir::Program;

    /// Reclaims every frame except the entry (whose uncompute would
    /// undo the in-place results these tests read back). Exercises
    /// the custom-uncompute and zero-checked-free paths everywhere
    /// below the top level.
    fn reclaim_inner(_m: square_qir::ModuleId, depth: usize) -> bool {
        depth > 0
    }

    /// Wraps an adder module in an entry: inputs in the low registers,
    /// the callee's extra registers as scratch, copying `copy_out`
    /// qubits of scratch into a final output register via the store.
    fn wrap(
        build: impl FnOnce(&mut ProgramBuilder, &mut ModuleCache) -> Result<ModuleId, QirError>,
        arg_qubits: usize,
    ) -> Program {
        let mut b = ProgramBuilder::new();
        let mut cache = ModuleCache::new();
        let callee = build(&mut b, &mut cache).unwrap();
        let main = b
            .module("main", 0, arg_qubits, |m| {
                let q: Vec<Operand> = (0..arg_qubits).map(|i| m.ancilla(i)).collect();
                m.call(callee, &q);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn run_case(p: &Program, inputs: &[bool]) -> Vec<bool> {
        // NeverReclaim keeps the in-place results observable at the
        // entry register (no top-level sweep).
        let r = run(p, inputs, &mut square_qir::sem::NeverReclaim).unwrap();
        r.outputs
    }

    #[test]
    fn cuccaro_adds_exhaustively() {
        for n in 1..=4usize {
            let p = wrap(|b, c| cuccaro_add(b, c, n), 2 * n);
            for a in 0..(1u64 << n) {
                for x in 0..(1u64 << n) {
                    let mut inputs = to_bits(a, n);
                    inputs.extend(to_bits(x, n));
                    let out = run_case(&p, &inputs);
                    let got_a = from_bits(&out[..n]);
                    let got_b = from_bits(&out[n..2 * n]);
                    assert_eq!(got_a, a, "a preserved, n={n} a={a} b={x}");
                    assert_eq!(got_b, (a + x) & mask(n), "sum, n={n} a={a} b={x}");
                }
            }
        }
    }

    #[test]
    fn cuccaro_ancilla_is_self_cleaning_under_eager() {
        // AlwaysReclaim triggers the empty uncompute + zero-checked
        // free: if the ripple ancilla were dirty this would error.
        let n = 4;
        let p = wrap(|b, c| cuccaro_add(b, c, n), 2 * n);
        for (a, x) in [(3u64, 9u64), (15, 15), (0, 7)] {
            let mut inputs = to_bits(a, n);
            inputs.extend(to_bits(x, n));
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            assert_eq!(from_bits(&r.outputs[n..2 * n]), (a + x) & mask(n));
        }
    }

    #[test]
    fn out_of_place_adder_with_carry() {
        for n in 1..=3usize {
            let p = wrap(|b, c| ripple_add_out(b, c, n), 3 * n + 1);
            for a in 0..(1u64 << n) {
                for x in 0..(1u64 << n) {
                    let mut inputs = to_bits(a, n);
                    inputs.extend(to_bits(x, n));
                    let out = run_case(&p, &inputs);
                    assert_eq!(from_bits(&out[..n]), a);
                    assert_eq!(from_bits(&out[n..2 * n]), x);
                    assert_eq!(
                        from_bits(&out[2 * n..3 * n + 1]),
                        a + x,
                        "full sum with carry, n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_place_adder_survives_lazy_sweep() {
        // Under TopLevelOnly the entry uncompute sweeps the carry
        // garbage; the sum lands in the callee's *store*, which is
        // inside the entry's compute slice, so it is undone too — the
        // observable invariant is ancilla hygiene (no DirtyAncilla).
        let n = 3;
        let p = wrap(|b, c| ripple_add_out(b, c, n), 3 * n + 1);
        let mut inputs = to_bits(5, n);
        inputs.extend(to_bits(6, n));
        let r = run(&p, &inputs, &mut TopLevelOnly).unwrap();
        assert_eq!(r.final_live, 3 * n + 1, "only the entry register lives");
    }

    #[test]
    fn controlled_out_of_place_adder() {
        let n = 3;
        let p = wrap(|b, c| ctrl_add_out(b, c, n), 3 * n + 2);
        for ctl in [0u64, 1] {
            for (a, x) in [(5u64, 6u64), (7, 7), (0, 3)] {
                let mut inputs = vec![ctl == 1];
                inputs.extend(to_bits(a, n));
                inputs.extend(to_bits(x, n));
                let out = run_case(&p, &inputs);
                let s = from_bits(&out[1 + 2 * n..2 + 3 * n]);
                assert_eq!(s, ctl * (a + x), "ctl={ctl} a={a} b={x}");
            }
        }
    }

    #[test]
    fn controlled_inplace_adder() {
        let n = 4;
        let p = wrap(|b, c| ctrl_add_inplace(b, c, n), 2 * n + 1);
        for ctl in [false, true] {
            for (a, x) in [(9u64, 4u64), (15, 1), (8, 8)] {
                let mut inputs = vec![ctl];
                inputs.extend(to_bits(a, n));
                inputs.extend(to_bits(x, n));
                // Reclaiming inner frames exercises the custom
                // uncompute (unload) path with the dirty-ancilla
                // check armed.
                let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
                let got = from_bits(&r.outputs[1 + n..1 + 2 * n]);
                let want = if ctl { (a + x) & mask(n) } else { x };
                assert_eq!(got, want, "ctl={ctl} a={a} b={x}");
                assert_eq!(from_bits(&r.outputs[1..1 + n]), a, "a preserved");
            }
        }
    }

    #[test]
    fn doubly_controlled_inplace_adder() {
        let n = 3;
        let p = wrap(|b, c| cc_add_inplace(b, c, n), 2 * n + 2);
        for c0 in [false, true] {
            for c1 in [false, true] {
                let (a, x) = (5u64, 4u64);
                let mut inputs = vec![c0, c1];
                inputs.extend(to_bits(a, n));
                inputs.extend(to_bits(x, n));
                let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
                let got = from_bits(&r.outputs[2 + n..2 + 2 * n]);
                let want = if c0 && c1 { (a + x) & mask(n) } else { x };
                assert_eq!(got, want, "c0={c0} c1={c1}");
            }
        }
    }

    #[test]
    fn constant_adders() {
        let n = 4;
        for k in [0u64, 1, 7, 15] {
            let p = wrap(|b, c| const_add_inplace(b, c, n, k), n);
            for x in [0u64, 3, 15] {
                let inputs = to_bits(x, n);
                let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
                assert_eq!(from_bits(&r.outputs[..n]), (x + k) & mask(n), "k={k} x={x}");
            }
        }
        // Controlled constant adds.
        let k = 11u64;
        let p = wrap(|b, c| ctrl_const_add_inplace(b, c, n, k), n + 1);
        for ctl in [false, true] {
            let mut inputs = vec![ctl];
            inputs.extend(to_bits(3, n));
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            let want = if ctl { (3 + k) & mask(n) } else { 3 };
            assert_eq!(from_bits(&r.outputs[1..1 + n]), want, "ctl={ctl}");
        }
    }

    #[test]
    fn bit_helpers_round_trip() {
        for v in [0u64, 1, 0b1011, 0xFFFF] {
            assert_eq!(from_bits(&to_bits(v, 16)), v & mask(16));
        }
        assert_eq!(mask(3), 0b111);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn cache_shares_modules() {
        let mut b = ProgramBuilder::new();
        let mut cache = ModuleCache::new();
        let a1 = cuccaro_add(&mut b, &mut cache, 4).unwrap();
        let a2 = cuccaro_add(&mut b, &mut cache, 4).unwrap();
        let a3 = cuccaro_add(&mut b, &mut cache, 8).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
    }
}

//! # square-workloads — the paper's benchmark suite (Table II)
//!
//! Every benchmark is built as a *modular reversible program* in the
//! `square-qir` IR, with the ancilla discipline (compute–store–
//! uncompute, Fig. 6 of the paper) that gives SQUARE its reclamation
//! decisions:
//!
//! * **Logic** — RD53, 6SYM, 2OF5: symmetric/weight functions built
//!   from controlled-increment counter networks.
//! * **Arithmetic** — ADDER4/32/64 (controlled addition), MUL32/64
//!   (controlled multipliers), MODEXP (modular exponentiation over
//!   `Z_{2^n}`), SHA2 (round function), SALSA20 (quarter-round core).
//! * **Synthetic** — Jasmine, Elsa, Belle (and small `-s` variants):
//!   random modular programs parameterized by nesting depth, fan-out,
//!   qubit and gate counts, exactly the knobs of Section V-A.
//!
//! See `catalog` for the named registry used by the experiment
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod catalog;
pub mod logic;
pub mod modexp;
pub mod mul;
pub mod salsa20;
pub mod sha2;
pub mod synthetic;

pub use catalog::{build, sq_file_stem, sq_source, Benchmark};

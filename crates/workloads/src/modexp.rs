//! Modular exponentiation (the MODEXP benchmark — Shor's algorithm's
//! arithmetic core, Fig. 1 of the paper).
//!
//! Computes `g^e mod 2^n` for a classical base `g` and quantum
//! exponent register `e` (k bits), by the standard chain of controlled
//! constant multiplications: `r_{j+1} = e_j ? r_j · g^{2^j} : r_j`.
//! Each intermediate `r_j` is an ancilla register of the modexp
//! module — the growing-and-reclaimable scratch that produces the
//! paper's Fig.-1 qubit-usage sawtooth.
//!
//! **Substitution note** (see DESIGN.md): the modulus is `2^n` rather
//! than a general odd `N`, dropping the comparator/conditional-subtract
//! subcircuits of a general modular adder while preserving the call
//! depth (modexp → const-mul → controlled add → ripple adder), the
//! ancilla discipline, and the gate-count scaling that SQUARE's
//! heuristics act on.

use square_qir::{ModuleId, Operand, ProgramBuilder, QirError};

use crate::arith::{ctrl_add_inplace_ext, mask, ModuleCache};

/// Parameters of a modexp instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModexpSpec {
    /// Value register width (result is mod `2^n`).
    pub n: usize,
    /// Exponent register width.
    pub k: usize,
    /// Classical base.
    pub g: u64,
}

impl ModexpSpec {
    /// The reference result `g^e mod 2^n` computed classically.
    pub fn reference(&self, e: u64) -> u64 {
        let m = mask(self.n);
        let mut acc = 1u64 & m;
        let mut base = self.g & m;
        for j in 0..self.k {
            if e >> j & 1 == 1 {
                acc = acc.wrapping_mul(base) & m;
            }
            base = base.wrapping_mul(base) & m;
        }
        acc
    }
}

/// Builds the modexp module: params `[e(k), result(n)]`; the chain
/// registers `r_1 … r_k` are module ancilla. `result` must start |0⟩;
/// the store block copies `r_k` into it.
pub fn modexp(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    spec: ModexpSpec,
) -> Result<ModuleId, QirError> {
    let ModexpSpec { n, k, g } = spec;
    assert!(n >= 1 && k >= 1, "modexp needs positive widths");
    let m_bits = mask(n);
    // Classical constants C_j = g^(2^j) mod 2^n.
    let mut consts = Vec::with_capacity(k);
    let mut c = g & m_bits;
    for _ in 0..k {
        consts.push(c);
        c = c.wrapping_mul(c) & m_bits;
    }
    // Adders for every (shift, step) we will need.
    let mut adders = vec![vec![None; n]; k];
    for (j, &cj) in consts.iter().enumerate().skip(1) {
        for (t, slot) in adders[j].iter_mut().enumerate() {
            if cj >> t & 1 == 1 {
                *slot = Some(ctrl_add_inplace_ext(b, cache, n - t, n - t)?);
            }
        }
    }
    b.module(format!("modexp{n}_{k}"), k + n, k * n, |m| {
        let e: Vec<Operand> = (0..k).map(|i| m.param(i)).collect();
        let result: Vec<Operand> = (0..n).map(|i| m.param(k + i)).collect();
        let r: Vec<Vec<Operand>> = (0..k)
            .map(|j| (0..n).map(|i| m.ancilla(j * n + i)).collect())
            .collect();
        // r_1 = e_0 ? g : 1  (bit loads controlled / anti-controlled).
        for (i, &r0i) in r[0].iter().enumerate() {
            if consts[0] >> i & 1 == 1 {
                m.cx(e[0], r0i);
            }
        }
        m.x(e[0]);
        m.cx(e[0], r[0][0]); // loads 1 when e_0 = 0
        m.x(e[0]);
        // r_{j+1} = e_j ? r_j · C_j : r_j
        for j in 1..k {
            for t in 0..n {
                if let Some(adder) = adders[j][t] {
                    // r_{j+1}[t..] += e_j · (r_j << t)
                    let mut args = vec![e[j]];
                    args.extend_from_slice(&r[j - 1][..n - t]);
                    args.extend_from_slice(&r[j][t..]);
                    m.call(adder, &args);
                }
            }
            // Anti-controlled copy: r_{j+1} ^= ¬e_j · r_j.
            m.x(e[j]);
            let (prev, cur) = (&r[j - 1], &r[j]);
            for (&src, &dst) in prev.iter().zip(cur) {
                m.ccx(e[j], src, dst);
            }
            m.x(e[j]);
        }
        m.store();
        for i in 0..n {
            m.cx(r[k - 1][i], result[i]);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_bits, to_bits};
    use square_qir::sem::run;
    use square_qir::Program;

    fn modexp_program(spec: ModexpSpec) -> Program {
        let mut b = ProgramBuilder::new();
        let mut cache = ModuleCache::new();
        let me = modexp(&mut b, &mut cache, spec).unwrap();
        let total = spec.k + spec.n;
        let main = b
            .module("main", 0, total, |m| {
                let q: Vec<Operand> = (0..total).map(|i| m.ancilla(i)).collect();
                m.call(me, &q);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn reclaim_inner(_m: square_qir::ModuleId, depth: usize) -> bool {
        depth > 0
    }

    #[test]
    fn reference_model_sanity() {
        let spec = ModexpSpec { n: 8, k: 4, g: 3 };
        assert_eq!(spec.reference(0), 1);
        assert_eq!(spec.reference(1), 3);
        assert_eq!(spec.reference(2), 9);
        assert_eq!(spec.reference(5), 3u64.pow(5) % 256);
    }

    #[test]
    fn exponentiates_exhaustively_small() {
        let spec = ModexpSpec { n: 4, k: 3, g: 3 };
        let p = modexp_program(spec);
        for e in 0..(1u64 << spec.k) {
            let inputs = to_bits(e, spec.k);
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            let got = from_bits(&r.outputs[spec.k..spec.k + spec.n]);
            assert_eq!(got, spec.reference(e), "e={e}");
            assert_eq!(
                from_bits(&r.outputs[..spec.k]),
                e,
                "exponent preserved, e={e}"
            );
        }
    }

    #[test]
    fn even_base_works_too() {
        let spec = ModexpSpec { n: 5, k: 3, g: 6 };
        let p = modexp_program(spec);
        for e in 0..(1u64 << spec.k) {
            let inputs = to_bits(e, spec.k);
            let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
            let got = from_bits(&r.outputs[spec.k..spec.k + spec.n]);
            assert_eq!(got, spec.reference(e), "e={e}");
        }
    }

    #[test]
    fn lazy_sweep_keeps_hygiene() {
        // Top-level-only reclamation across the whole modexp chain:
        // the entry sweep must find every ancilla restorable.
        let spec = ModexpSpec { n: 3, k: 2, g: 3 };
        let p = modexp_program(spec);
        let r = run(&p, &to_bits(3, 2), &mut square_qir::sem::TopLevelOnly).unwrap();
        assert_eq!(r.final_live, spec.k + spec.n);
    }
}

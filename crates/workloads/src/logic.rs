//! Reversible logic benchmarks: RD53, 6SYM, 2OF5 (Table II).
//!
//! All three are symmetric functions of their inputs, so they share a
//! counter-network synthesis: controlled increments accumulate the
//! input weight into a small ancilla counter, equality tests write the
//! outputs, and the counter is mechanically uncomputed. This is the
//! functional re-synthesis substitution documented in DESIGN.md — the
//! I/O behaviour matches the classic RevLib functions while the
//! ancilla discipline is the paper's compute–store–uncompute form.
//!
//! * **RD53**: 5 inputs, 3 outputs — the binary weight of the input.
//! * **6SYM**: 6 inputs, 1 output — 1 iff the weight is in {2,3,4}.
//! * **2OF5**: 5 inputs, 1 output — 1 iff exactly two inputs are 1.

use square_qir::{ModuleBuilder, ModuleId, Operand, ProgramBuilder, QirError};

/// Emits a controlled increment of the `cnt` register (binary ripple:
/// MSB-first multi-controlled flips). In-place; the compiler lowers
/// the MCX gates to Toffoli V-chains with managed ancilla.
fn ctrl_increment(m: &mut ModuleBuilder, ctl: Operand, cnt: &[Operand]) {
    for j in (1..cnt.len()).rev() {
        let mut controls = vec![ctl];
        controls.extend_from_slice(&cnt[..j]);
        m.mcx(&controls, cnt[j]);
    }
    m.cx(ctl, cnt[0]);
}

/// Emits `out ^= (cnt == value)` using an X-conjugated MCX. Only legal
/// inside a compute block (the mask transiently writes `cnt`).
fn equality_check(m: &mut ModuleBuilder, cnt: &[Operand], value: u64, out: Operand) {
    let mask_bits: Vec<usize> = (0..cnt.len()).filter(|i| value >> i & 1 == 0).collect();
    for &i in &mask_bits {
        m.x(cnt[i]);
    }
    m.mcx(cnt, out);
    for &i in &mask_bits {
        m.x(cnt[i]);
    }
}

/// Weight-counter module: params `[x(inputs), out(counter_bits)]`;
/// counts the ones of `x` into an internal counter ancilla and stores
/// the weight to `out`.
pub fn weight_counter(
    b: &mut ProgramBuilder,
    inputs: usize,
    counter_bits: usize,
) -> Result<ModuleId, QirError> {
    b.module(
        format!("count{inputs}_{counter_bits}"),
        inputs + counter_bits,
        counter_bits,
        |m| {
            let x: Vec<Operand> = (0..inputs).map(|i| m.param(i)).collect();
            let out: Vec<Operand> = (0..counter_bits).map(|i| m.param(inputs + i)).collect();
            let cnt: Vec<Operand> = (0..counter_bits).map(|i| m.ancilla(i)).collect();
            for xi in &x {
                ctrl_increment(m, *xi, &cnt);
            }
            m.store();
            for i in 0..counter_bits {
                m.cx(cnt[i], out[i]);
            }
        },
    )
}

/// Weight-class module: params `[x(inputs), out]`; sets `out` iff the
/// input weight is one of `values`. Equality flags are computed into
/// per-value ancilla during compute, OR-accumulated (XOR of disjoint
/// indicators) into `out` by the store, then uncomputed.
pub fn weight_in_set(
    b: &mut ProgramBuilder,
    name: &str,
    inputs: usize,
    counter_bits: usize,
    values: &[u64],
) -> Result<ModuleId, QirError> {
    let values = values.to_vec();
    b.module(
        name.to_string(),
        inputs + 1,
        counter_bits + values.len(),
        |m| {
            let x: Vec<Operand> = (0..inputs).map(|i| m.param(i)).collect();
            let out = m.param(inputs);
            let cnt: Vec<Operand> = (0..counter_bits).map(|i| m.ancilla(i)).collect();
            let eq: Vec<Operand> = (0..values.len())
                .map(|i| m.ancilla(counter_bits + i))
                .collect();
            for xi in &x {
                ctrl_increment(m, *xi, &cnt);
            }
            for (v, e) in values.iter().zip(&eq) {
                equality_check(m, &cnt, *v, *e);
            }
            m.store();
            for e in &eq {
                m.cx(*e, out);
            }
        },
    )
}

/// RD53 as an entry program: entry register = `[x(5), scratch(3),
/// out(3)]`; `out` receives the input weight.
pub fn rd53() -> Result<square_qir::Program, QirError> {
    let mut b = ProgramBuilder::new();
    let counter = weight_counter(&mut b, 5, 3)?;
    let main = b.module("rd53", 0, 11, |m| {
        let q: Vec<Operand> = (0..8).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (8..11).map(|i| m.ancilla(i)).collect();
        m.call(counter, &q);
        m.store();
        for i in 0..3 {
            m.cx(q[5 + i], out[i]);
        }
    })?;
    b.finish(main)
}

/// 6SYM as an entry program: entry register = `[x(6), scratch, out]`;
/// `out` = 1 iff weight(x) ∈ {2, 3, 4}.
pub fn sym6() -> Result<square_qir::Program, QirError> {
    let mut b = ProgramBuilder::new();
    let f = weight_in_set(&mut b, "sym6_core", 6, 3, &[2, 3, 4])?;
    let main = b.module("6sym", 0, 8, |m| {
        let q: Vec<Operand> = (0..7).map(|i| m.ancilla(i)).collect();
        let out = m.ancilla(7);
        m.call(f, &q);
        m.store();
        m.cx(q[6], out);
    })?;
    b.finish(main)
}

/// 2OF5 as an entry program: entry register = `[x(5), scratch, out]`;
/// `out` = 1 iff exactly two inputs are 1.
pub fn two_of_five() -> Result<square_qir::Program, QirError> {
    let mut b = ProgramBuilder::new();
    let f = weight_in_set(&mut b, "2of5_core", 5, 3, &[2])?;
    let main = b.module("2of5", 0, 7, |m| {
        let q: Vec<Operand> = (0..6).map(|i| m.ancilla(i)).collect();
        let out = m.ancilla(6);
        m.call(f, &q);
        m.store();
        m.cx(q[5], out);
    })?;
    b.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_bits, to_bits};
    use square_qir::sem::{run, AlwaysReclaim, TopLevelOnly};

    #[test]
    fn rd53_outputs_weight_for_all_inputs() {
        let p = rd53().unwrap();
        for x in 0..32u64 {
            let inputs = to_bits(x, 5);
            let weight = x.count_ones() as u64;
            for oracle in [true, false] {
                let out = if oracle {
                    run(&p, &inputs, &mut AlwaysReclaim).unwrap().outputs
                } else {
                    run(&p, &inputs, &mut TopLevelOnly).unwrap().outputs
                };
                assert_eq!(from_bits(&out[8..11]), weight, "x={x:05b}");
                assert_eq!(from_bits(&out[..5]), x, "inputs restored, x={x:05b}");
                assert_eq!(from_bits(&out[5..8]), 0, "scratch swept, x={x:05b}");
            }
        }
    }

    #[test]
    fn sym6_matches_definition() {
        let p = sym6().unwrap();
        for x in 0..64u64 {
            let inputs = to_bits(x, 6);
            let w = x.count_ones();
            let expect = (2..=4).contains(&w);
            let out = run(&p, &inputs, &mut AlwaysReclaim).unwrap().outputs;
            assert_eq!(out[7], expect, "x={x:06b} weight={w}");
        }
    }

    #[test]
    fn two_of_five_matches_definition() {
        let p = two_of_five().unwrap();
        for x in 0..32u64 {
            let inputs = to_bits(x, 5);
            let expect = x.count_ones() == 2;
            let out = run(&p, &inputs, &mut TopLevelOnly).unwrap().outputs;
            assert_eq!(out[6], expect, "x={x:05b}");
        }
    }

    #[test]
    fn lowered_versions_agree() {
        let p = two_of_five().unwrap();
        let lowered = square_qir::lower_mcx(&p);
        square_qir::validate::validate_program(&lowered).unwrap();
        for x in [0u64, 3, 5, 24, 31] {
            let inputs = to_bits(x, 5);
            let a = run(&p, &inputs, &mut AlwaysReclaim).unwrap().outputs;
            let b = run(&lowered, &inputs, &mut AlwaysReclaim).unwrap().outputs;
            assert_eq!(a[6], b[6], "x={x:05b}");
        }
    }
}

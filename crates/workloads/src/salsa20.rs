//! Salsa20 core function (the SALSA20 benchmark of Table II).
//!
//! Per the paper (footnote 6): "20 rounds of 4 parallel modules; each
//! module modifies 4 words with modular additions, XOR operations, and
//! bit rotations." Each add-rotate-xor step is a Bennett module: the
//! sum `a + b` is computed into ancilla, the store block XORs its
//! rotation into the destination word, and the sum/carry ancilla are
//! mechanically uncomputed. The 4 quarter-rounds of each round touch
//! disjoint words, giving the scheduler genuine parallelism — exactly
//! the workload property SQUARE trades against serialization when it
//! reuses qubits.

use square_qir::{ModuleId, Operand, ProgramBuilder, QirError};

use crate::arith::{mask, ModuleCache};

/// One add-rotate-xor step as a module: params `[a(w), b(w), dst(w)]`,
/// `dst ^= rotl(a + b, r)`. Sum and carries are internal ancilla.
pub fn arx_op(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    w: usize,
    r: usize,
) -> Result<ModuleId, QirError> {
    assert!(w >= 2 && r < w, "need rotation < word width");
    cache.get_or_insert(("arx", w, r as u64), || {
        b.module(format!("arx{w}_{r}"), 3 * w, 2 * w, |m| {
            let a: Vec<Operand> = (0..w).map(|i| m.param(i)).collect();
            let x: Vec<Operand> = (0..w).map(|i| m.param(w + i)).collect();
            let dst: Vec<Operand> = (0..w).map(|i| m.param(2 * w + i)).collect();
            // carries c[i] = carry into bit i+1; sum s (mod 2^w).
            let c: Vec<Operand> = (0..w).map(|i| m.ancilla(i)).collect();
            let s: Vec<Operand> = (0..w).map(|i| m.ancilla(w + i)).collect();
            m.ccx(a[0], x[0], c[0]);
            for i in 1..w {
                m.ccx(a[i], x[i], c[i]);
                m.ccx(a[i], c[i - 1], c[i]);
                m.ccx(x[i], c[i - 1], c[i]);
            }
            m.cx(a[0], s[0]);
            m.cx(x[0], s[0]);
            for i in 1..w {
                m.cx(a[i], s[i]);
                m.cx(x[i], s[i]);
                m.cx(c[i - 1], s[i]);
            }
            m.store();
            // dst ^= rotl(s, r): bit i of rotl(s,r) is s[(i + w - r) % w].
            for i in 0..w {
                m.cx(s[(i + w - r) % w], dst[i]);
            }
        })
    })
}

/// Salsa20 quarter-round over words `(x0, x1, x2, x3)`:
/// four chained ARX steps with rotations scaled to the word width
/// (7, 9, 13, 18 at w = 32).
pub fn quarter_round(
    b: &mut ProgramBuilder,
    cache: &mut ModuleCache,
    w: usize,
) -> Result<ModuleId, QirError> {
    let rots = rotations(w);
    let ops: Vec<ModuleId> = rots
        .iter()
        .map(|&r| arx_op(b, cache, w, r))
        .collect::<Result<_, _>>()?;
    cache.get_or_insert(("qr", w, 0), || {
        b.module(format!("qr{w}"), 4 * w, 0, |m| {
            let word = |m: &mut square_qir::ModuleBuilder, idx: usize| -> Vec<Operand> {
                (0..w).map(|i| m.param(idx * w + i)).collect()
            };
            let x0 = word(m, 0);
            let x1 = word(m, 1);
            let x2 = word(m, 2);
            let x3 = word(m, 3);
            let call = |m: &mut square_qir::ModuleBuilder,
                        op: ModuleId,
                        a: &[Operand],
                        bb: &[Operand],
                        d: &[Operand]| {
                let mut args = a.to_vec();
                args.extend_from_slice(bb);
                args.extend_from_slice(d);
                m.call(op, &args);
            };
            call(m, ops[0], &x0, &x3, &x1); // x1 ^= R(x0 + x3, 7)
            call(m, ops[1], &x1, &x0, &x2); // x2 ^= R(x1 + x0, 9)
            call(m, ops[2], &x2, &x1, &x3); // x3 ^= R(x2 + x1, 13)
            call(m, ops[3], &x3, &x2, &x0); // x0 ^= R(x3 + x2, 18)
        })
    })
}

/// Salsa20 rotation constants, scaled below 32-bit words.
pub fn rotations(w: usize) -> [usize; 4] {
    if w >= 32 {
        [7, 9, 13, 18]
    } else {
        [1 % w, 2 % w, (w / 2) % w, (w - 1) % w]
    }
}

/// The quarter-round word indices per round: columns on even rounds,
/// rows on odd rounds (the Salsa20 double-round structure).
pub fn round_pattern(round: usize) -> [[usize; 4]; 4] {
    if round.is_multiple_of(2) {
        [[0, 4, 8, 12], [5, 9, 13, 1], [10, 14, 2, 6], [15, 3, 7, 11]]
    } else {
        [[0, 1, 2, 3], [5, 6, 7, 4], [10, 11, 8, 9], [15, 12, 13, 14]]
    }
}

/// The SALSA20 benchmark program: `rounds` rounds over 16 `w`-bit
/// words. Entry register = `[state(16w), out(16w)]`; the final state
/// is copied to `out` (the feed-forward addition of the full cipher is
/// omitted — the core permutation carries the workload).
pub fn salsa20(w: usize, rounds: usize) -> Result<square_qir::Program, QirError> {
    let mut b = ProgramBuilder::new();
    let mut cache = ModuleCache::new();
    let qr = quarter_round(&mut b, &mut cache, w)?;
    let main = b.module("salsa20", 0, 32 * w, |m| {
        let state: Vec<Operand> = (0..16 * w).map(|i| m.ancilla(i)).collect();
        let out: Vec<Operand> = (0..16 * w).map(|i| m.ancilla(16 * w + i)).collect();
        for round in 0..rounds {
            for quad in round_pattern(round) {
                let mut args = Vec::with_capacity(4 * w);
                for word in quad {
                    args.extend_from_slice(&state[word * w..(word + 1) * w]);
                }
                m.call(qr, &args);
            }
        }
        m.store();
        for i in 0..16 * w {
            m.cx(state[i], out[i]);
        }
    })?;
    b.finish(main)
}

/// Classical reference of [`salsa20`].
pub fn salsa20_reference(init: [u64; 16], w: usize, rounds: usize) -> [u64; 16] {
    let m = mask(w);
    let rotl = |x: u64, r: usize| {
        if r == 0 {
            x & m
        } else {
            ((x << r) | (x >> (w - r))) & m
        }
    };
    let rots = rotations(w);
    let mut s = init.map(|v| v & m);
    for round in 0..rounds {
        for quad in round_pattern(round) {
            let [i0, i1, i2, i3] = quad;
            s[i1] ^= rotl(s[i0].wrapping_add(s[i3]) & m, rots[0]);
            s[i2] ^= rotl(s[i1].wrapping_add(s[i0]) & m, rots[1]);
            s[i3] ^= rotl(s[i2].wrapping_add(s[i1]) & m, rots[2]);
            s[i0] ^= rotl(s[i3].wrapping_add(s[i2]) & m, rots[3]);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_bits, to_bits};
    use square_qir::sem::run;

    fn reclaim_inner(_m: square_qir::ModuleId, depth: usize) -> bool {
        depth > 0
    }

    #[test]
    fn single_round_matches_reference() {
        let w = 6;
        let p = salsa20(w, 1).unwrap();
        let init: [u64; 16] = core::array::from_fn(|i| (i as u64 * 7 + 3) & mask(w));
        let mut inputs = Vec::new();
        for v in init {
            inputs.extend(to_bits(v, w));
        }
        let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
        let expect = salsa20_reference(init, w, 1);
        for (word, &want) in expect.iter().enumerate() {
            let got = from_bits(&r.outputs[16 * w + word * w..16 * w + (word + 1) * w]);
            assert_eq!(got, want, "word {word}");
        }
    }

    #[test]
    fn double_round_matches_reference() {
        let w = 5;
        let p = salsa20(w, 2).unwrap();
        let init: [u64; 16] = core::array::from_fn(|i| (i as u64).wrapping_mul(11) & mask(w));
        let mut inputs = Vec::new();
        for v in init {
            inputs.extend(to_bits(v, w));
        }
        let r = run(&p, &inputs, &mut reclaim_inner).unwrap();
        let expect = salsa20_reference(init, w, 2);
        for (word, &want) in expect.iter().enumerate() {
            let got = from_bits(&r.outputs[16 * w + word * w..16 * w + (word + 1) * w]);
            assert_eq!(got, want, "word {word}");
        }
    }

    #[test]
    fn lazy_sweep_keeps_hygiene() {
        let w = 4;
        let p = salsa20(w, 2).unwrap();
        let r = run(&p, &to_bits(9, w), &mut square_qir::sem::TopLevelOnly).unwrap();
        assert_eq!(r.final_live, 32 * w);
    }
}
